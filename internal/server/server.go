// Package server is the request-driven online serving tier of §9: an
// HTTP/JSON API over the prediction service and the stream processor,
// backed by a dynamic micro-batcher. Session-start and access events are
// ingested through the stream processor's async submit seam; due sessions
// park in bounded per-shard queues and are coalesced — flush on max-batch
// or max-wait — into the wave-partitioned batched GEMM finaliser, so GEMM
// batch sizes form from real traffic instead of replay lanes. Concurrent
// predict requests ride an analogous bounded queue into the fan-out batch
// prediction path.
//
// Ordering and parity: a user's events must arrive in timestamp order (the
// load generator shards users across connections to guarantee it), a
// session's start and access events ride the same POST (ingested under one
// ingest-lock hold), and a user always hashes to the same finalisation
// queue. Under those rules the stored hidden states are byte-identical to
// sequential in-process replay of the same event log — the /digest endpoint
// exposes the proof.
//
// Backpressure: when the finalisation backlog reaches the queue capacity,
// POST /event returns 429 and the shed counter advances; when the predict
// queue is full, POST /predict does the same. Bounded queues shed load
// instead of growing without limit.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nn"
	"repro/internal/replication"
	"repro/internal/serving"
	"repro/internal/statestore"
)

// Event is one stream event in the HTTP API (and the unit of the replay
// logs ppload sends). Type "start" opens a session (User, Cat and Ts are
// the §9 context variables); type "access" marks the session's activity
// accessed.
type Event struct {
	Type    string `json:"type"`
	Session string `json:"session"`
	User    int    `json:"user,omitempty"`
	Ts      int64  `json:"ts"`
	Cat     []int  `json:"cat,omitempty"`
}

// PredictIn is the POST /predict request body.
type PredictIn struct {
	User int   `json:"user"`
	Ts   int64 `json:"ts"`
	Cat  []int `json:"cat,omitempty"`
}

// PredictOut is the POST /predict response body. Degraded is set by the
// router when the owning replica was unreachable and the answer came from
// a fallback replica's (possibly stale, possibly cold-start) state — the
// paper's graceful-degradation contract: a usable prediction beats a 5xx.
type PredictOut struct {
	Probability float64 `json:"probability"`
	Precompute  bool    `json:"precompute"`
	Degraded    bool    `json:"degraded,omitempty"`
}

// Statz is the GET /statz response body.
type Statz struct {
	UptimeSec       float64                    `json:"uptime_sec"`
	Events          int64                      `json:"events"`
	EventsShed      int64                      `json:"events_shed"`
	Predicts        int64                      `json:"predicts"`
	PredictsShed    int64                      `json:"predicts_shed"`
	Precomputes     int64                      `json:"precomputes"`
	ColdStarts      int64                      `json:"cold_starts"`
	DecodeFailures  int64                      `json:"decode_failures"`
	UpdatesRun      int64                      `json:"updates_run"`
	PendingSessions int                        `json:"pending_sessions"`
	Inflight        int                        `json:"inflight"`
	Batches         int64                      `json:"batches"`
	MeanBatch       float64                    `json:"mean_batch"`
	Precision       string                     `json:"precision"`
	Store           serving.Stats              `json:"store"`
	Lifecycle       *statestore.LifecycleStats `json:"lifecycle,omitempty"`
}

// Options configures a Server.
type Options struct {
	Model *core.Model
	Store serving.Store
	// State, when non-nil, is the durable tier behind Store: graceful
	// shutdown forces a final snapshot on it (the caller closes it).
	State *statestore.Store
	// Threshold is the precompute decision boundary.
	Threshold float64
	// Precision selects the finalisation compute tier (nn.TierF64, the
	// bit-exact reference, or nn.TierF32, the fused float32 kernels).
	// TierF32 requires a cell with an f32 inference tier — New panics
	// otherwise; flag-level validation lives in ppserve. Predictions always
	// run f64 (the MLP-dominated path widens exactly from the stored wire).
	Precision nn.PrecisionTier
	// Follower, when non-nil, is the replication client applying a
	// primary's records into State. The server exposes its admin half
	// (/replicate/follow, /replicate/promote) and stops it on Shutdown;
	// the caller starts it.
	Follower *replication.Follower

	// Lanes is the number of finalisation shards — bounded queues, each
	// drained by one flusher goroutine (<=0 selects GOMAXPROCS). A user
	// always hashes to the same lane, which preserves per-user update
	// order.
	Lanes int
	// MaxBatch flushes a queue when this many sessions have parked
	// (<=0 selects 32). It also bounds the GEMM batch, so it is the online
	// analogue of ppserve's -infer-batch.
	MaxBatch int
	// MaxWait flushes a partial batch this long after the queue went
	// non-empty. 0 selects 2ms; negative disables waiting (greedy flush —
	// the batch-size-1 behaviour when MaxBatch is 1).
	MaxWait time.Duration
	// LaneDepth bounds each finalisation queue (<=0 selects 256). Admission
	// control sheds events with 429 once Lanes*LaneDepth finalisations are
	// in flight.
	LaneDepth int
	// PredictDepth bounds the predict queue (<=0 selects 1024).
	PredictDepth int
	// PredictWorkers is the fan-out inside one predict batch (<=0 selects
	// GOMAXPROCS).
	PredictWorkers int
}

// predictItem is one parked predict request and its reply channel.
type predictItem struct {
	req serving.PredictRequest
	ch  chan serving.Decision
}

// Server is the online serving tier. Create with New, serve with
// ListenAndServe/Serve (or mount Handler in a test server), stop with
// Shutdown.
type Server struct {
	opts Options
	svc  *serving.PredictionService

	// mu guards the ingest half (proc and draining). The sink dispatches
	// lane sends under mu; flushers never take mu, so the blocking send
	// cannot deadlock.
	mu       sync.Mutex
	proc     *serving.StreamProcessor
	draining bool

	lanes       []chan serving.DueSession
	flushers    sync.WaitGroup
	maxInflight int

	predictMu     sync.RWMutex
	predictQ      chan predictItem
	predictClosed bool
	predictWG     sync.WaitGroup

	// inflight counts dispatched-but-unfinalised sessions; cond wakes
	// /flush and Shutdown waiters when the pipeline drains.
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflight     int

	events       atomic.Int64
	eventsShed   atomic.Int64
	predicts     atomic.Int64
	predictsShed atomic.Int64
	updatesRun   atomic.Int64
	batches      atomic.Int64

	// source streams the statestore's tail to replication subscribers
	// (nil without a durable store).
	source *replication.Source

	// wireMu guards the binary-listener registry (ServeWire) so Shutdown
	// can close listeners and live connections; wireWG tracks per-
	// connection goroutines across the drain.
	wireMu        sync.Mutex
	wireListeners map[net.Listener]struct{}
	wireConns     map[net.Conn]struct{}
	wireWG        sync.WaitGroup

	start time.Time
	mux   *http.ServeMux
	// httpMu guards httpSrv: ListenAndServe/Serve register it while
	// Shutdown (typically a signal goroutine) reads it.
	httpMu   sync.Mutex
	httpSrv  *http.Server
	shutdown atomic.Bool
}

// New wires the serving stack and starts the flusher goroutines. The
// server owns its queues and flushers; the model, store and statestore
// stay caller-owned.
func New(opts Options) *Server {
	if opts.Lanes <= 0 {
		opts.Lanes = runtime.GOMAXPROCS(0)
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	if opts.MaxWait == 0 {
		opts.MaxWait = 2 * time.Millisecond
	}
	if opts.LaneDepth <= 0 {
		opts.LaneDepth = 256
	}
	if opts.PredictDepth <= 0 {
		opts.PredictDepth = 1024
	}
	if opts.PredictWorkers <= 0 {
		opts.PredictWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Precision == nn.TierF32 && !opts.Model.SupportsF32() {
		// Programmer error: flag-level input is validated in ppserve, so an
		// unsupported tier reaching here means the caller skipped the gate.
		panic("server: f32 precision requires a cell with an f32 inference tier (gate on Model.SupportsF32)")
	}
	s := &Server{
		opts:        opts,
		svc:         serving.NewPredictionService(opts.Model, opts.Store, opts.Threshold),
		proc:        serving.NewStreamProcessor(opts.Model, opts.Store),
		lanes:       make([]chan serving.DueSession, opts.Lanes),
		maxInflight: opts.Lanes * opts.LaneDepth,
		predictQ:    make(chan predictItem, opts.PredictDepth),
		start:       time.Now(),

		wireListeners: map[net.Listener]struct{}{},
		wireConns:     map[net.Conn]struct{}{},
	}
	s.inflightCond = sync.NewCond(&s.inflightMu)
	s.proc.SetSink(s.submitDue)
	for i := range s.lanes {
		lane := make(chan serving.DueSession, opts.LaneDepth)
		s.lanes[i] = lane
		s.flushers.Add(1)
		go s.runFlusher(lane)
	}
	s.predictWG.Add(1)
	go s.runPredictFlusher()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/event", s.handleEvent)
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/digest", s.handleDigest)
	s.mux.HandleFunc("/export", s.handleExport)
	s.mux.HandleFunc("/import", s.handleImport)
	s.mux.HandleFunc("/drop", s.handleDrop)
	if opts.State != nil {
		s.source = replication.NewSource(opts.State)
	}
	s.mux.HandleFunc("/replicate/subscribe", s.handleReplicateSubscribe)
	s.mux.HandleFunc("/replicate/status", s.handleReplicateStatus)
	s.mux.HandleFunc("/replicate/follow", s.handleReplicateFollow)
	s.mux.HandleFunc("/replicate/promote", s.handleReplicatePromote)
	return s
}

// Handler returns the API mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// registerHTTP installs the http.Server unless shutdown already latched
// (a SIGTERM can land before the listener starts; serving would then be
// unstoppable). Returns false when the server must not start.
func (s *Server) registerHTTP(h *http.Server) bool {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.shutdown.Load() {
		return false
	}
	s.httpSrv = h
	return true
}

// ListenAndServe serves the API on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	h := &http.Server{Addr: addr, Handler: s.mux}
	if !s.registerHTTP(h) {
		return nil
	}
	err := h.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Serve serves the API on an existing listener until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	h := &http.Server{Handler: s.mux}
	if !s.registerHTTP(h) {
		return nil
	}
	err := h.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully: stop accepting requests, let
// in-flight handlers finish, fire every outstanding session timer (a
// buffered session's update is applied rather than lost), wait for the
// micro-batcher to drain, and force a final statestore snapshot so a clean
// reopen recovers byte-identical states. The whole drain is bounded by
// ctx — on expiry Shutdown returns the context error (after a best-effort
// snapshot of whatever has landed) instead of hanging on a stuck store.
// Idempotent; the caller closes the statestore afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.shutdown.Swap(true) {
		return nil
	}
	// Replication first: stop applying remote records (a follower) and
	// drop subscriber sessions (hijacked conns the http.Server no longer
	// tracks) before the drain, so nothing mutates the store behind the
	// final snapshot.
	if s.opts.Follower != nil {
		s.opts.Follower.Stop()
	}
	if s.source != nil {
		s.source.Close()
	}
	var err error
	s.httpMu.Lock()
	h := s.httpSrv
	s.httpMu.Unlock()
	if h != nil {
		err = h.Shutdown(ctx)
	}
	// The binary listeners next: wire clients are load generators and
	// routers that finish their replay before shutdown, so conns are
	// closed rather than drained — an in-flight frame either applied
	// whole (its goroutine holds mu before the draining latch) or not at
	// all.
	s.closeWire()
	if werr := waitGroupCtx(ctx, &s.wireWG); werr != nil && err == nil {
		err = werr
	}
	// After draining latches (under mu), no handler dispatches again —
	// every lane send happens inside a processor call under mu, and every
	// handler that makes such a call (/event and /flush) checks draining
	// first under the same mu hold — so closing the queues is safe:
	// flushers finish whatever is parked and exit — their WaitGroups double
	// as the drain barrier.
	s.mu.Lock()
	s.draining = true
	s.proc.Flush()
	s.mu.Unlock()
	for _, lane := range s.lanes {
		close(lane)
	}
	s.predictMu.Lock()
	s.predictClosed = true
	close(s.predictQ)
	s.predictMu.Unlock()
	if werr := waitGroupCtx(ctx, &s.flushers); werr != nil && err == nil {
		err = werr
	}
	if werr := waitGroupCtx(ctx, &s.predictWG); werr != nil && err == nil {
		err = werr
	}
	if s.opts.State != nil {
		if serr := s.opts.State.Snapshot(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// waitGroupCtx waits for wg or the context, whichever first. On ctx
// expiry the waiter goroutine stays parked until the group eventually
// drains — acceptable because a timed-out drain means flusher goroutines
// are already stuck; the waiter adds nothing to what leaked.
func waitGroupCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- finalisation micro-batcher ----

// laneFor maps a user to a finalisation lane via the shared partitioning
// function — all of a user's sessions land on one lane.
func (s *Server) laneFor(userID int) chan serving.DueSession {
	return s.lanes[serving.UserLane(userID, len(s.lanes))]
}

// submitDue is the processor's sink: it runs under s.mu (inside Advance),
// so dispatch order is drain order. The lane send blocks when the lane is
// full — flushers never take s.mu, so this backpressure cannot deadlock,
// and admission control keeps it rare.
func (s *Server) submitDue(d serving.DueSession) {
	s.inflightMu.Lock()
	s.inflight++
	s.inflightMu.Unlock()
	s.laneFor(d.UserID) <- d
}

// retire counts n finalised sessions and wakes drain waiters.
func (s *Server) retire(n int) {
	s.updatesRun.Add(int64(n))
	s.inflightMu.Lock()
	s.inflight -= n
	if s.inflight == 0 {
		s.inflightCond.Broadcast()
	}
	s.inflightMu.Unlock()
}

// waitIdle blocks until no dispatched finalisation is outstanding.
func (s *Server) waitIdle() {
	s.inflightMu.Lock()
	for s.inflight > 0 {
		s.inflightCond.Wait()
	}
	s.inflightMu.Unlock()
}

// overloaded reports whether the finalisation backlog has reached the
// admission watermark — globally, or on any single lane. The per-lane
// check matters under skew: a hot lane fills long before the global
// watermark trips, and without it the sink's lane send would block the
// ingest lock (head-of-line blocking every endpoint) instead of shedding.
// Channel len/cap reads are racy by nature; admission is approximate and
// errs by shedding a post early, never by unbounded queueing.
func (s *Server) overloaded() bool {
	s.inflightMu.Lock()
	over := s.inflight >= s.maxInflight
	s.inflightMu.Unlock()
	if over {
		return true
	}
	for _, lane := range s.lanes {
		if len(lane) == cap(lane) {
			return true
		}
	}
	return false
}

// runFlusher drains one lane: take the first parked session, coalesce up
// to MaxBatch (waiting at most MaxWait for stragglers), then finalise the
// batch through the wave-partitioned GEMM cell.
func (s *Server) runFlusher(lane chan serving.DueSession) {
	defer s.flushers.Done()
	fin, err := serving.NewBatchFinalizerTier(s.opts.Model, s.opts.Store, s.opts.MaxBatch, s.opts.Precision)
	if err != nil {
		panic(err) // unreachable: New validated the tier against the model
	}
	batch := make([]serving.DueSession, 0, s.opts.MaxBatch)
	for d := range lane {
		batch = append(batch[:0], d)
		fillBatch(lane, &batch, s.opts.MaxBatch, s.opts.MaxWait)
		fin.Finalize(batch)
		s.batches.Add(1)
		s.retire(len(batch))
	}
}

// fillBatch coalesces queued items into batch: greedily take whatever is
// already parked, then wait up to maxWait for a fuller flush. Flushes
// early when the batch fills or the queue closes.
func fillBatch[T any](q chan T, batch *[]T, maxBatch int, maxWait time.Duration) {
	for len(*batch) < maxBatch {
		select {
		case d, ok := <-q:
			if !ok {
				return
			}
			*batch = append(*batch, d)
			continue
		default:
		}
		if maxWait <= 0 {
			return
		}
		timer := time.NewTimer(maxWait)
		for len(*batch) < maxBatch {
			select {
			case d, ok := <-q:
				if !ok {
					timer.Stop()
					return
				}
				*batch = append(*batch, d)
			case <-timer.C:
				return
			}
		}
		timer.Stop()
		return
	}
}

// ---- predict micro-batcher ----

// runPredictFlusher coalesces parked predict requests and serves them
// through the fan-out batch prediction path, answering each parked
// request on its reply channel.
func (s *Server) runPredictFlusher() {
	defer s.predictWG.Done()
	items := make([]predictItem, 0, s.opts.MaxBatch)
	reqs := make([]serving.PredictRequest, 0, s.opts.MaxBatch)
	for it := range s.predictQ {
		items = append(items[:0], it)
		fillBatch(s.predictQ, &items, s.opts.MaxBatch, s.opts.MaxWait)
		reqs = reqs[:0]
		for _, it := range items {
			reqs = append(reqs, it.req)
		}
		decs := s.svc.OnSessionStartBatch(reqs, s.opts.PredictWorkers)
		for i := range items {
			items[i].ch <- decs[i]
		}
		s.predicts.Add(int64(len(items)))
	}
}

// ---- handlers ----

const maxBodyBytes = 8 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// checkCat validates a request's context categories against the model
// schema. The feature encoders index by category value, so an unchecked
// out-of-range request would panic a flusher goroutine instead of
// returning 400.
func (s *Server) checkCat(cat []int) error {
	schema := s.opts.Model.Schema
	if len(cat) != len(schema.Cat) {
		return fmt.Errorf("cat needs %d entries, got %d", len(schema.Cat), len(cat))
	}
	for i, c := range cat {
		if c < 0 || c >= schema.Cat[i].Cardinality {
			return fmt.Errorf("cat[%d]=%d outside [0,%d)", i, c, schema.Cat[i].Cardinality)
		}
	}
	return nil
}

// handleEvent ingests one event or a JSON array of events. The whole post
// is admitted or shed as a unit, and is ingested under one ingest-lock
// hold — which is what lets clients keep a session's start and access
// events atomic (ride the same post) so no later clock advance can fire
// the timer between them.
func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := faults.Fire("server.event", ""); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var evs []Event
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &evs)
	} else {
		var ev Event
		err = json.Unmarshal(body, &ev)
		evs = []Event{ev}
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decoding events: "+err.Error())
		return
	}
	for _, ev := range evs {
		switch ev.Type {
		case "start":
			if ev.Session == "" || ev.User < 0 || ev.Ts <= 0 {
				writeErr(w, http.StatusBadRequest, "start event needs session, user >= 0 and ts > 0")
				return
			}
			if err := s.checkCat(ev.Cat); err != nil {
				writeErr(w, http.StatusBadRequest, "start event: "+err.Error())
				return
			}
		case "access":
			if ev.Session == "" || ev.Ts <= 0 {
				writeErr(w, http.StatusBadRequest, "access event needs session and ts > 0")
				return
			}
		default:
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown event type %q", ev.Type))
			return
		}
	}
	if s.overloaded() {
		s.eventsShed.Add(int64(len(evs)))
		writeErr(w, http.StatusTooManyRequests, "finalisation backlog full, event shed")
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	for _, ev := range evs {
		if ev.Type == "start" {
			s.proc.OnSessionStart(ev.Session, ev.User, ev.Ts, ev.Cat)
		} else {
			s.proc.OnAccess(ev.Session, ev.Ts)
		}
	}
	s.mu.Unlock()
	s.events.Add(int64(len(evs)))
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(evs)})
}

// handlePredict parks the request in the predict queue and waits for the
// micro-batched decision.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := faults.Fire("server.predict", ""); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	var in PredictIn
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&in); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if in.User < 0 || in.Ts <= 0 {
		writeErr(w, http.StatusBadRequest, "predict needs user >= 0 and ts > 0")
		return
	}
	if err := s.checkCat(in.Cat); err != nil {
		writeErr(w, http.StatusBadRequest, "predict: "+err.Error())
		return
	}
	it := predictItem{
		req: serving.PredictRequest{UserID: in.User, Ts: in.Ts, Cat: in.Cat},
		ch:  make(chan serving.Decision, 1),
	}
	s.predictMu.RLock()
	if s.predictClosed {
		s.predictMu.RUnlock()
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	select {
	case s.predictQ <- it:
		s.predictMu.RUnlock()
	default:
		s.predictMu.RUnlock()
		s.predictsShed.Add(1)
		writeErr(w, http.StatusTooManyRequests, "predict queue full, request shed")
		return
	}
	dec := <-it.ch
	writeJSON(w, http.StatusOK, PredictOut{Probability: dec.Probability, Precompute: dec.Precompute})
}

// handleFlush fires every outstanding session timer and waits for the
// micro-batcher to drain — the end-of-replay barrier load generators call
// before taking a digest.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := faults.Fire("server.flush", ""); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.Lock()
	if s.draining {
		// Same guard as handleEvent: once Shutdown has latched draining the
		// lanes are (about to be) closed, and Flush would dispatch into them —
		// a send on a closed channel. A flush racing SIGTERM gets a clean 503;
		// Shutdown itself runs the final Flush under mu.
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.proc.Flush()
	pending := s.proc.Pending()
	s.mu.Unlock()
	s.waitIdle()
	writeJSON(w, http.StatusOK, map[string]int64{
		"updates_run": s.updatesRun.Load(),
		"pending":     int64(pending),
	})
}

// handleDigest returns the SHA-256 digest of the resident state. A digest
// taken mid-traffic matches no consistent store state, so the endpoint
// refuses with 409 while sessions are buffered or finalisations are in
// flight — POST /flush first (the check is best-effort: quiescing the
// traffic source is the caller's job).
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if pending, inflight, ok := s.quiesced(); !ok {
		writeErr(w, http.StatusConflict, fmt.Sprintf(
			"%d sessions pending, %d finalisations in flight — POST /flush first", pending, inflight))
		return
	}
	digest, keys := serving.StateDigest(s.opts.Store)
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":   keys,
		"digest": digest,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatz reports the serving tier's counters.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the server's counters (the /statz payload).
func (s *Server) Stats() Statz {
	s.mu.Lock()
	pending := s.proc.Pending()
	s.mu.Unlock()
	s.inflightMu.Lock()
	inflight := s.inflight
	s.inflightMu.Unlock()
	st := Statz{
		UptimeSec:       time.Since(s.start).Seconds(),
		Events:          s.events.Load(),
		EventsShed:      s.eventsShed.Load(),
		Predicts:        s.predicts.Load(),
		PredictsShed:    s.predictsShed.Load(),
		Precomputes:     s.svc.Precomputes.Load(),
		ColdStarts:      s.svc.ColdStarts.Load(),
		DecodeFailures:  s.svc.DecodeFailures.Load(),
		UpdatesRun:      s.updatesRun.Load(),
		PendingSessions: pending,
		Inflight:        inflight,
		Batches:         s.batches.Load(),
		Precision:       s.opts.Precision.String(),
		Store:           s.opts.Store.Stats(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.UpdatesRun) / float64(st.Batches)
	}
	if s.opts.State != nil {
		ls := s.opts.State.Lifecycle()
		st.Lifecycle = &ls
	}
	return st
}
