package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/replication"
)

// Replication endpoints. A server backed by a durable statestore is
// always willing to act as a replication source: POST
// /replicate/subscribe upgrades the connection to the length-prefixed
// replication protocol and streams the store's tail (internal/replication
// owns the wire format). A server started as a follower additionally
// exposes the admin half: /replicate/follow retargets it at a new primary
// and /replicate/promote stops replication so the store can take writes —
// the router calls both during a failover. /replicate/status reports both
// sides' progress; the follower's last_seq against the primary's
// /statz store.WALSeq is the replication lag.

// ReplicateStatus is the GET /replicate/status response body.
type ReplicateStatus struct {
	Source   *replication.SourceStatus   `json:"source,omitempty"`
	Follower *replication.FollowerStatus `json:"follower,omitempty"`
}

// handleReplicateSubscribe upgrades the connection and serves one
// replication session until the peer or the server goes away.
func (s *Server) handleReplicateSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.source == nil {
		writeErr(w, http.StatusConflict, "no durable statestore behind this server; nothing to replicate")
		return
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), replication.UpgradeProtocol) {
		writeErr(w, http.StatusBadRequest, "Upgrade: "+replication.UpgradeProtocol+" required")
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "connection cannot be hijacked")
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "hijack: "+err.Error())
		return
	}
	fmt.Fprintf(rw.Writer, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n",
		replication.UpgradeProtocol)
	if err := rw.Writer.Flush(); err != nil {
		conn.Close()
		return
	}
	// Serve blocks for the session's lifetime in this handler goroutine
	// (the connection is hijacked, so the http.Server no longer tracks
	// it); Shutdown terminates it through source.Close.
	s.source.Serve(conn, rw)
}

// handleReplicateStatus reports replication progress for both roles.
func (s *Server) handleReplicateStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var st ReplicateStatus
	if s.source != nil {
		ss := s.source.Status()
		st.Source = &ss
	}
	if s.opts.Follower != nil {
		fs := s.opts.Follower.Status()
		st.Follower = &fs
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReplicateFollow points a follower-mode server at a new primary
// (the router's re-replication step after a promotion).
func (s *Server) handleReplicateFollow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.opts.Follower == nil {
		writeErr(w, http.StatusConflict, "not a follower (start with -follow or -replica-of)")
		return
	}
	var req struct {
		Primary string `json:"primary"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if req.Primary == "" {
		writeErr(w, http.StatusBadRequest, "primary URL required")
		return
	}
	s.opts.Follower.Retarget(req.Primary)
	writeJSON(w, http.StatusOK, map[string]string{"following": req.Primary})
}

// handleReplicatePromote permanently stops replication on a follower so
// its store can take writes as a primary. Once the response is written no
// replicated record will land anymore.
func (s *Server) handleReplicatePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.opts.Follower == nil {
		writeErr(w, http.StatusConflict, "not a follower (start with -follow or -replica-of)")
		return
	}
	seq := s.opts.Follower.Promote()
	writeJSON(w, http.StatusOK, map[string]int64{"last_seq": seq})
}
