package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/serving"
	"repro/internal/synth"
	"repro/internal/wire"
)

// The load generator replays an event log over the HTTP API, closed- or
// open-loop, and reports latency histograms. It is shared by cmd/ppload
// (standalone driver) and the loadtest experiment (in-process benchmark),
// and its per-user ordering rules are what make the HTTP replay parity-
// comparable with in-process sequential replay: users are sharded across
// workers (a user's events stay on one connection, in timestamp order) and
// a session's start and access events always ride the same POST.

// ReplayEvent is one session of the replay log: a start event plus an
// optional access 30 virtual seconds later (the same shape ppserve's
// offline replay drives in-process).
type ReplayEvent struct {
	SID    string
	User   int
	Ts     int64
	Cat    []int
	Access bool
}

// ReplayCohort generates the deterministic MobileTab serving cohort:
// users*2 synthetic users, half for training, half replayed. ppserve,
// ppload and the loadtest experiment all derive their cohorts (and so
// their replay logs) from this one function, which is what makes the HTTP
// parity gate compare identical traffic and identically-trained models by
// construction.
func ReplayCohort(users int, seed uint64) (*dataset.Dataset, dataset.Split) {
	cfg := synth.DefaultMobileTab()
	cfg.Users = users * 2
	cfg.Seed = seed
	data := synth.GenerateMobileTab(cfg)
	return data, dataset.SplitUsers(data, 0.5, seed)
}

// ReplayLog builds the timestamp-ordered replay log of the held-out
// cohort half — the exact event stream ppserve's offline mode replays
// in-process.
func ReplayLog(users int, seed uint64) []ReplayEvent {
	_, split := ReplayCohort(users, seed)
	return LogFromDataset(split.Test)
}

// LogFromDataset flattens a dataset (e.g. a ppgen file) into a
// timestamp-ordered replay log.
func LogFromDataset(d *dataset.Dataset) []ReplayEvent {
	var evs []ReplayEvent
	for _, u := range d.Users {
		for i, s := range u.Sessions {
			evs = append(evs, ReplayEvent{
				SID:    fmt.Sprintf("u%d-s%d", u.ID, i),
				User:   u.ID,
				Ts:     s.Timestamp,
				Cat:    s.Cat,
				Access: s.Access,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	return evs
}

// LoadOptions configures one load run.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Concurrency is the number of closed-loop connections; users are
	// sharded across them by hash (<=0 selects 8).
	Concurrency int
	// EventsPerPost coalesces this many events per POST /event (<=0
	// selects 16). A session's start+access pair is never split.
	EventsPerPost int
	// PredictEvery enables predict-latency sampling: a dedicated sampler
	// connection strides the log by this many sessions, posting one
	// /predict per PredictInterval while the event replay runs (0 = no
	// predictions). Sampling rides its own connection so latency is
	// measured under load without throttling the event stream.
	PredictEvery int
	// PredictInterval paces the predict sampler (<=0 selects 10ms).
	PredictInterval time.Duration
	// RatePerSec paces the run open-loop at this many sessions/s across
	// all workers (0 = closed loop: send as fast as responses return).
	RatePerSec float64
	// Flush POSTs /flush after the replay (inside the timed window — the
	// drain is part of the served work).
	Flush bool
	// RetryFailed re-sends an event post that failed in transit or came
	// back 5xx up to this many times before advancing (0 = fail fast and
	// drop the batch, the historical behavior). Retries happen in place,
	// so a user's event order is preserved — that is what keeps "zero
	// lost states" reachable while the cluster rides out a failover or a
	// breaker-open window. Shed (429) batches are never retried: shedding
	// is the server's explicit choice, not a fault.
	RetryFailed int
	// RetryBackoff is the pause between event-post retries (<=0 selects
	// 50ms).
	RetryBackoff time.Duration
	// Client overrides the HTTP client (nil selects a pooled default).
	Client *http.Client
	// WireAddr switches the hot path (events, predicts) onto the binary
	// wire protocol at this host:port, one persistent pooled connection
	// per worker. The control plane (/flush, /digest, /statz) stays on
	// BaseURL over HTTP. Empty keeps everything on HTTP.
	WireAddr string
}

// LatencyStats summarises one endpoint's request latencies.
type LatencyStats struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	// Sessions is the log size; SessionsAccepted counts sessions the
	// server actually admitted (a shed post's sessions are excluded).
	// SessionsPerSec is accepted sessions over wall time, so shedding
	// cannot inflate throughput.
	Sessions         int `json:"sessions"`
	SessionsAccepted int `json:"sessions_accepted"`
	Events           int `json:"events"`
	Posts            int `json:"posts"`
	Predicts         int `json:"predicts"`
	// Shed counts shed *events* (a 429 event post sheds its whole batch);
	// PredictsShed counts shed predict *requests* — different units, so
	// they are reported separately.
	Shed         int `json:"shed"`
	PredictsShed int `json:"predicts_shed"`
	Errors       int `json:"errors"`
	// Retries counts event-post re-sends (RetryFailed > 0); a batch that
	// eventually lands after retries is not an error. DegradedPredicts
	// counts 200 predict responses that carried the degraded flag — the
	// router answered from a non-owner replica while the owner was down.
	Retries          int `json:"retries,omitempty"`
	DegradedPredicts int `json:"degraded_predicts,omitempty"`
	// EventsPerPostMean is the realized batch size: accepted events over
	// event posts sent. It differs from the configured EventsPerPost when
	// chunks flush early to keep start/access pairs whole, or when posts
	// are retried — throughput comparisons need the realized value, not
	// the knob.
	EventsPerPostMean float64      `json:"events_per_post_mean,omitempty"`
	WallMs            float64      `json:"wall_ms"`
	SessionsPerSec    float64      `json:"sessions_per_sec"`
	EventLatency      LatencyStats `json:"event_latency"`
	PredictLatency    LatencyStats `json:"predict_latency"`
}

// loadWorker drives one connection's share of the log.
type loadWorker struct {
	opts         LoadOptions
	client       *http.Client
	wcl          *wire.Client // non-nil in wire mode
	lane         uint64       // pins this worker to one pooled wire connection
	wireBuf      []byte       // reused encode buffer (events or predict payload)
	sessions     []ReplayEvent
	eventLat     []float64
	predictLat   []float64
	events       int
	sessionsOK   int // sessions whose post was accepted
	posts        int
	predicts     int
	shed         int // events shed via 429
	predictsShed int // predict requests shed via 429
	errors       int
	retries      int // event-post re-sends under RetryFailed
	degraded     int // 200 predicts answered degraded by the router
}

// RunLoad replays log over the HTTP API and reports throughput and latency.
// The returned error covers setup problems only; per-request failures are
// counted in the report.
func RunLoad(opts LoadOptions, log []ReplayEvent) (*LoadReport, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.EventsPerPost <= 0 {
		opts.EventsPerPost = 16
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: opts.Concurrency * 2,
			},
		}
	}

	// In wire mode the hot path rides a pooled binary client: one pooled
	// connection per worker plus one for the predict sampler, so the
	// per-worker (and therefore per-user) ordering contract carries over
	// unchanged from the HTTP transport.
	var wcl *wire.Client
	if opts.WireAddr != "" {
		wcl = wire.NewClient(opts.WireAddr, wire.ClientOptions{Conns: opts.Concurrency + 1})
		defer wcl.Close()
	}

	// Shard sessions by user: all of a user's sessions ride one worker, in
	// log (timestamp) order — the ordering contract the parity gate needs.
	workers := make([]*loadWorker, opts.Concurrency)
	for i := range workers {
		workers[i] = &loadWorker{opts: opts, client: client, wcl: wcl, lane: uint64(i)}
	}
	for _, ev := range log {
		w := workers[serving.UserLane(ev.User, len(workers))]
		w.sessions = append(w.sessions, ev)
	}

	t0 := time.Now()
	done := make(chan struct{})
	for _, w := range workers {
		go func(w *loadWorker) {
			defer func() { done <- struct{}{} }()
			w.run(t0)
		}(w)
	}
	var sampler *loadWorker
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	if opts.PredictEvery > 0 && len(log) > 0 {
		sampler = &loadWorker{opts: opts, client: client, wcl: wcl, lane: uint64(opts.Concurrency)}
		go func() {
			defer close(samplerDone)
			sampler.samplePredicts(log, stopSampler)
		}()
	}
	for range workers {
		<-done
	}
	if sampler != nil {
		close(stopSampler)
		<-samplerDone
	}
	if opts.Flush {
		if _, err := Flush(opts.BaseURL, client); err != nil {
			return nil, fmt.Errorf("flush: %w", err)
		}
	}
	wall := time.Since(t0)

	rep := &LoadReport{
		Sessions: len(log),
		WallMs:   float64(wall.Nanoseconds()) / 1e6,
	}
	var evLat, prLat []float64
	for _, w := range workers {
		rep.Events += w.events
		rep.SessionsAccepted += w.sessionsOK
		rep.Posts += w.posts
		rep.Predicts += w.predicts
		rep.Shed += w.shed
		rep.PredictsShed += w.predictsShed
		rep.Errors += w.errors
		rep.Retries += w.retries
		rep.DegradedPredicts += w.degraded
		evLat = append(evLat, w.eventLat...)
		prLat = append(prLat, w.predictLat...)
	}
	if sampler != nil {
		rep.Predicts += sampler.predicts
		rep.PredictsShed += sampler.predictsShed
		rep.Errors += sampler.errors
		rep.DegradedPredicts += sampler.degraded
		prLat = append(prLat, sampler.predictLat...)
	}
	rep.SessionsPerSec = float64(rep.SessionsAccepted) / wall.Seconds()
	if rep.Posts > 0 {
		rep.EventsPerPostMean = float64(rep.Events) / float64(rep.Posts)
	}
	rep.EventLatency = summarize(evLat)
	rep.PredictLatency = summarize(prLat)
	return rep, nil
}

// samplePredicts is the predict-latency side channel: it strides the log,
// posting one predict per interval until the event replay finishes (at
// least one is always posted).
func (w *loadWorker) samplePredicts(log []ReplayEvent, stop <-chan struct{}) {
	interval := w.opts.PredictInterval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	for i := 0; ; i++ {
		w.postPredict(log[(i*w.opts.PredictEvery)%len(log)])
		select {
		case <-stop:
			return
		case <-time.After(interval):
		}
	}
}

// run replays the worker's sessions: coalesce events into posts (keeping
// each session's start+access pair whole), pace if open-loop.
func (w *loadWorker) run(start time.Time) {
	if w.wcl != nil {
		w.runWire(start)
		return
	}
	chunk := make([]Event, 0, w.opts.EventsPerPost+1)
	var sent int
	pace := func() {
		if w.opts.RatePerSec <= 0 {
			return
		}
		perWorker := w.opts.RatePerSec / float64(w.opts.Concurrency)
		due := start.Add(time.Duration(float64(sent) / perWorker * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	flushChunk := func() {
		if len(chunk) == 0 {
			return
		}
		w.postEvents(chunk)
		chunk = chunk[:0]
	}
	for _, ev := range w.sessions {
		pace()
		// Keep the pair atomic: flush first if it would not fit whole.
		if len(chunk)+2 > cap(chunk) {
			flushChunk()
		}
		chunk = append(chunk, Event{Type: "start", Session: ev.SID, User: ev.User, Ts: ev.Ts, Cat: ev.Cat})
		if ev.Access {
			chunk = append(chunk, Event{Type: "access", Session: ev.SID, Ts: ev.Ts + 30})
		}
		if len(chunk) >= w.opts.EventsPerPost {
			flushChunk()
		}
		sent++
	}
	flushChunk()
}

// runWire is run's binary-transport twin: the same chunking rules (pair
// atomicity, EventsPerPost, pacing), but events encode straight into a
// reused wire batch buffer instead of a JSON slice.
func (w *loadWorker) runWire(start time.Time) {
	var count, starts, sent int
	buf := w.wireBuf[:0]
	pace := func() {
		if w.opts.RatePerSec <= 0 {
			return
		}
		perWorker := w.opts.RatePerSec / float64(w.opts.Concurrency)
		due := start.Add(time.Duration(float64(sent) / perWorker * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	flushChunk := func() {
		if count == 0 {
			return
		}
		w.postEventsWire(count, starts, buf)
		buf, count, starts = buf[:0], 0, 0
	}
	for _, ev := range w.sessions {
		pace()
		// Keep the pair atomic: flush first if it would not fit whole.
		if count+2 > w.opts.EventsPerPost+1 {
			flushChunk()
		}
		buf = wire.AppendStart(buf, ev.User, ev.Ts, ev.SID, ev.Cat)
		count++
		starts++
		if ev.Access {
			buf = wire.AppendAccess(buf, ev.User, ev.Ts+30, ev.SID)
			count++
		}
		if count >= w.opts.EventsPerPost {
			flushChunk()
		}
		sent++
	}
	flushChunk()
	w.wireBuf = buf
}

func (w *loadWorker) postEvents(evs []Event) {
	starts := 0
	for _, ev := range evs {
		if ev.Type == "start" {
			starts++
		}
	}
	body, _ := json.Marshal(evs)
	backoff := w.opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	// Retry in place: the same batch is re-sent until it is accepted, shed,
	// or the budget runs out. Because the worker does not advance past a
	// failed batch, a user's events still reach the server in timestamp
	// order even when some posts ride out a failover window.
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		resp, err := w.client.Post(w.opts.BaseURL+"/event", "application/json", bytes.NewReader(body))
		lat := float64(time.Since(t0).Nanoseconds()) / 1e6
		w.posts++
		retryable := false
		if err != nil {
			retryable = true
		} else {
			w.eventLat = append(w.eventLat, lat)
			switch {
			case resp.StatusCode == http.StatusAccepted:
				resp.Body.Close()
				w.events += len(evs)
				w.sessionsOK += starts
				return
			case resp.StatusCode == http.StatusTooManyRequests:
				resp.Body.Close()
				w.shed += len(evs)
				return
			default:
				retryable = resp.StatusCode >= 500
				resp.Body.Close()
			}
		}
		if !retryable || attempt >= w.opts.RetryFailed {
			w.errors++
			return
		}
		w.retries++
		time.Sleep(backoff)
	}
}

// postEventsWire is postEvents over the binary transport, with the same
// retry contract: transport errors and Error/Draining acks are retryable
// in place (order preserved), shed batches are not. SendEvents itself
// never retries — delivery after a transport error is unknown, and the
// double-apply rule says only this layer, which owns the batch, decides.
func (w *loadWorker) postEventsWire(count, starts int, events []byte) {
	backoff := w.opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		ack, err := w.wcl.SendEvents(w.lane, count, events)
		lat := float64(time.Since(t0).Nanoseconds()) / 1e6
		w.posts++
		retryable := false
		if err != nil {
			retryable = true
		} else {
			w.eventLat = append(w.eventLat, lat)
			switch ack.Status {
			case wire.StatusOK:
				w.events += count
				w.sessionsOK += starts
				return
			case wire.StatusShed:
				w.shed += count
				return
			default:
				retryable = ack.Status == wire.StatusError || ack.Status == wire.StatusDraining
			}
		}
		if !retryable || attempt >= w.opts.RetryFailed {
			w.errors++
			return
		}
		w.retries++
		time.Sleep(backoff)
	}
}

func (w *loadWorker) postPredict(ev ReplayEvent) {
	if w.wcl != nil {
		w.postPredictWire(ev)
		return
	}
	body, _ := json.Marshal(PredictIn{User: ev.User, Ts: ev.Ts, Cat: ev.Cat})
	t0 := time.Now()
	resp, err := w.client.Post(w.opts.BaseURL+"/predict", "application/json", bytes.NewReader(body))
	lat := float64(time.Since(t0).Nanoseconds()) / 1e6
	if err != nil {
		w.errors++
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		w.predicts++
		w.predictLat = append(w.predictLat, lat)
		var out PredictOut
		if json.NewDecoder(resp.Body).Decode(&out) == nil && out.Degraded {
			w.degraded++
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		w.predictsShed++
	default:
		w.errors++
	}
	resp.Body.Close()
}

// postPredictWire samples one predict over the binary transport. Like the
// HTTP sampler it makes a single attempt per sample — a failed sample is
// an error count, not a retry loop distorting the latency histogram.
func (w *loadWorker) postPredictWire(ev ReplayEvent) {
	payload := wire.AppendPredict(w.wireBuf[:0], ev.User, ev.Ts, ev.Cat)
	w.wireBuf = payload
	t0 := time.Now()
	pr, err := w.wcl.SendPredict(w.lane, payload, 0)
	lat := float64(time.Since(t0).Nanoseconds()) / 1e6
	if err != nil {
		w.errors++
		return
	}
	switch pr.Status {
	case wire.StatusOK:
		w.predicts++
		w.predictLat = append(w.predictLat, lat)
		if pr.Degraded {
			w.degraded++
		}
	case wire.StatusShed:
		w.predictsShed++
	default:
		w.errors++
	}
}

// summarize sorts latencies and extracts the histogram quantiles using the
// explicit nearest-rank definition: Q(p) is the smallest sample such that at
// least p·n samples are <= it, i.e. the sorted sample at index ceil(p·n)−1.
// (The previous rounding form, int(p·n+0.5)−1, sat one rank low whenever the
// fractional part of p·n was in (0, 0.5) — e.g. P90 of 24 samples read rank
// 21 instead of 22 — which systematically flattered tail latencies.)
func summarize(lat []float64) LatencyStats {
	switch len(lat) {
	case 0:
		return LatencyStats{}
	case 1:
		// Every quantile of a single sample is that sample.
		return LatencyStats{Count: 1, P50Ms: lat[0], P90Ms: lat[0], P95Ms: lat[0], P99Ms: lat[0], MaxMs: lat[0]}
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	return LatencyStats{
		Count: len(lat),
		P50Ms: q(0.50),
		P90Ms: q(0.90),
		P95Ms: q(0.95),
		P99Ms: q(0.99),
		MaxMs: lat[len(lat)-1],
	}
}

// ---- client helpers for the control endpoints ----

// Flush POSTs /flush and returns the server's completed update count.
func Flush(baseURL string, client *http.Client) (updatesRun int64, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(baseURL+"/flush", "application/json", nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("flush: HTTP %d", resp.StatusCode)
	}
	var out struct {
		UpdatesRun int64 `json:"updates_run"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.UpdatesRun, nil
}

// Digest GETs /digest and returns the server's resident-state digest.
func Digest(baseURL string, client *http.Client) (keys int, digest string, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/digest")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("digest: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Keys   int    `json:"keys"`
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, "", err
	}
	return out.Keys, out.Digest, nil
}

// FetchStatz GETs /statz.
func FetchStatz(baseURL string, client *http.Client) (*Statz, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statz: HTTP %d", resp.StatusCode)
	}
	var out Statz
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitHealthy polls /healthz until the server answers or the timeout
// elapses. Each probe has its own short timeout so one hung request
// cannot defeat the overall deadline.
func WaitHealthy(baseURL string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %s: %w", timeout, err)
			}
			return fmt.Errorf("server not healthy after %s", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
