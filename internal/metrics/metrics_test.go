package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPRCurvePerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve := PRCurve(scores, labels)
	if len(curve) != 4 {
		t.Fatalf("curve length: %d", len(curve))
	}
	// Every prefix of positives has precision 1.
	if curve[0].Precision != 1 || curve[0].Recall != 0.5 {
		t.Fatalf("first point: %+v", curve[0])
	}
	if curve[1].Precision != 1 || curve[1].Recall != 1 {
		t.Fatalf("second point: %+v", curve[1])
	}
	if auc := PRAUC(scores, labels); auc != 1 {
		t.Fatalf("perfect PR-AUC: got %v", auc)
	}
}

func TestPRCurveWorstClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{false, false, true, true}
	auc := PRAUC(scores, labels)
	// Positives ranked last: AP = 0.5*(1/3 - 0) ... compute: thresholds
	// desc: after 2 negs P=0 R=0; third P=1/3 R=0.5; fourth P=1/2 R=1.
	want := (1.0/3)*0.5 + 0.5*0.5
	if math.Abs(auc-want) > 1e-12 {
		t.Fatalf("worst-case AUC: got %v, want %v", auc, want)
	}
}

func TestPRCurveTieGrouping(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	curve := PRCurve(scores, labels)
	if len(curve) != 1 {
		t.Fatalf("tied scores must collapse to one point, got %d", len(curve))
	}
	if curve[0].Precision != 0.5 || curve[0].Recall != 1 {
		t.Fatalf("tie point: %+v", curve[0])
	}
}

func TestPRCurveNoPositives(t *testing.T) {
	if c := PRCurve([]float64{0.1, 0.9}, []bool{false, false}); c != nil {
		t.Fatalf("no positives must return nil")
	}
	if !math.IsNaN(PRAUC([]float64{0.1}, []bool{false})) {
		t.Fatalf("PRAUC with no positives must be NaN")
	}
	if c := PRCurve(nil, nil); c != nil {
		t.Fatalf("empty input must return nil")
	}
}

func TestPRCurveLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	PRCurve([]float64{1}, []bool{true, false})
}

func TestPRAUCRandomScoresNearBaseRate(t *testing.T) {
	// For random scores, AP concentrates near the positive rate.
	rng := tensor.NewRNG(1)
	const n = 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.2)
	}
	auc := PRAUC(scores, labels)
	if math.Abs(auc-0.2) > 0.03 {
		t.Fatalf("random-score AP should be ≈ base rate 0.2, got %v", auc)
	}
}

func TestRecallAtPrecision(t *testing.T) {
	// Scores: top 2 are positive, then mixed.
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	labels := []bool{true, true, false, true, false}
	r, thr := RecallAtPrecision(scores, labels, 1.0)
	if r != 2.0/3 || thr != 0.8 {
		t.Fatalf("recall@P=1: got (%v, %v)", r, thr)
	}
	r, _ = RecallAtPrecision(scores, labels, 0.75)
	if r != 1 {
		t.Fatalf("recall@P=0.75: got %v (precision at k=4 is 3/4)", r)
	}
	r, thr = RecallAtPrecision(scores, labels, 1.1)
	if r != 0 || !math.IsInf(thr, 1) {
		t.Fatalf("unreachable precision: got (%v, %v)", r, thr)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	p, r := PrecisionRecallAt(scores, labels, 0.75)
	if p != 0.5 || r != 0.5 {
		t.Fatalf("PrecisionRecallAt(0.75): got (%v, %v)", p, r)
	}
	p, r = PrecisionRecallAt(scores, labels, 2)
	if p != 0 || r != 0 {
		t.Fatalf("threshold above all scores: got (%v, %v)", p, r)
	}
}

func TestLogLoss(t *testing.T) {
	if l := LogLoss([]float64{0.5, 0.5}, []bool{true, false}); math.Abs(l-math.Ln2) > 1e-12 {
		t.Fatalf("LogLoss: got %v, want ln2", l)
	}
	if l := LogLoss([]float64{1, 0}, []bool{true, false}); l > 1e-10 {
		t.Fatalf("perfect predictions: got %v", l)
	}
	if l := LogLoss([]float64{0}, []bool{true}); math.IsInf(l, 0) {
		t.Fatalf("clamping must keep loss finite")
	}
	if l := LogLoss(nil, nil); l != 0 {
		t.Fatalf("empty LogLoss: got %v", l)
	}
}

func TestCDFBasics(t *testing.T) {
	vals := []float64{3, 1, 2, 4}
	cdf := CDF(vals, 0)
	if len(cdf) != 4 {
		t.Fatalf("CDF length: %d", len(cdf))
	}
	if cdf[0].X != 1 || cdf[0].Frac != 0.25 {
		t.Fatalf("first point: %+v", cdf[0])
	}
	if cdf[3].X != 4 || cdf[3].Frac != 1 {
		t.Fatalf("last point: %+v", cdf[3])
	}
	// Input untouched.
	if vals[0] != 3 {
		t.Fatalf("CDF must not mutate input")
	}
	if CDF(nil, 10) != nil {
		t.Fatalf("empty CDF must be nil")
	}
}

func TestCDFDownsampling(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	cdf := CDF(vals, 10)
	if len(cdf) != 10 {
		t.Fatalf("downsampled length: %d", len(cdf))
	}
	if cdf[9].Frac != 1 {
		t.Fatalf("last fraction must be 1: %v", cdf[9].Frac)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Frac <= cdf[i-1].Frac || cdf[i].X < cdf[i-1].X {
			t.Fatalf("CDF must be monotone")
		}
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 100, -5}
	h := Histogram(vals, 5, 0, 5)
	total := 0
	for _, b := range h {
		total += b.Count
	}
	if total != len(vals) {
		t.Fatalf("histogram must count every value (clamping): %d", total)
	}
	// Bin width 1: 0→bin0, -5 clamps into bin0; 4→bin4, and 5, 100 clamp
	// into bin4.
	if h[0].Count != 2 {
		t.Fatalf("bin0: got %d, want 2 (0 and clamped -5): %+v", h[0].Count, h)
	}
	if h[4].Count != 3 {
		t.Fatalf("bin4: got %d, want 3 (4 plus clamped 5, 100): %+v", h[4].Count, h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on bad spec")
		}
	}()
	Histogram(nil, 0, 0, 1)
}

func TestQuantileAndMean(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if q := Quantile(vals, 0); q != 1 {
		t.Fatalf("q0: %v", q)
	}
	if q := Quantile(vals, 1); q != 5 {
		t.Fatalf("q1: %v", q)
	}
	if q := Quantile(vals, 0.5); q != 3 {
		t.Fatalf("median: %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatalf("empty quantile must be NaN")
	}
	if m := Mean(vals); m != 3 {
		t.Fatalf("mean: %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("empty mean: %v", m)
	}
}

// Property: PR-AUC is invariant under any strictly monotone transform of
// the scores (it depends only on the ranking).
func TestPRAUCRankInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(200)
		scores := make([]float64, n)
		labels := make([]bool, n)
		anyPos := false
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Bernoulli(0.3)
			anyPos = anyPos || labels[i]
		}
		if !anyPos {
			return true
		}
		a := PRAUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(3*s) + 7 // strictly monotone
		}
		b := PRAUC(transformed, labels)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the PR curve's recall is non-decreasing as the threshold
// lowers, ending at exactly 1.
func TestPRCurveRecallMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 5 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]bool, n)
		anyPos := false
		for i := range scores {
			scores[i] = math.Floor(rng.Float64()*10) / 10 // induce ties
			labels[i] = rng.Bernoulli(0.4)
			anyPos = anyPos || labels[i]
		}
		if !anyPos {
			return true
		}
		curve := PRCurve(scores, labels)
		prev := 0.0
		for _, p := range curve {
			if p.Recall < prev {
				return false
			}
			prev = p.Recall
		}
		return prev == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PR-AUC is always within [0, 1].
func TestPRAUCBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(64)
		scores := make([]float64, n)
		labels := make([]bool, n)
		anyPos := false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Bernoulli(0.5)
			anyPos = anyPos || labels[i]
		}
		if !anyPos {
			return true
		}
		auc := PRAUC(scores, labels)
		return auc >= 0 && auc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
