// Package metrics implements the evaluation measures used in §8 of the
// paper: the precision-recall curve, the area under it (PR-AUC, the paper's
// headline comparison metric, following Davis & Goadrich 2006), recall at a
// fixed precision (Table 4 uses 50%, the production deployment 60%), and
// log loss. It also provides the CDF and histogram helpers behind Figures
// 1, 4 and 5.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	// Threshold is the minimum score classified positive at this point.
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve over all distinct score
// thresholds, ordered from the highest threshold (low recall) to the
// lowest (recall 1). Tied scores are grouped into a single operating point,
// matching scikit-learn's precision_recall_curve semantics. It panics if
// lengths differ and returns nil if there are no positive labels.
func PRCurve(scores []float64, labels []bool) []PRPoint {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: PRCurve: %d scores vs %d labels", len(scores), len(labels)))
	}
	totalPos := 0
	for _, l := range labels {
		if l {
			totalPos++
		}
	}
	if totalPos == 0 || len(scores) == 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var curve []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		threshold := scores[idx[i]]
		// Consume the whole tie group.
		for i < len(idx) && scores[idx[i]] == threshold {
			if labels[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, PRPoint{
			Threshold: threshold,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalPos),
		})
	}
	return curve
}

// PRAUC returns the area under the precision-recall curve using the
// step-wise (average precision) integration Σ (Rᵢ − Rᵢ₋₁)·Pᵢ, which Davis &
// Goadrich recommend for skewed datasets over trapezoidal interpolation.
// Returns NaN when there are no positive labels.
func PRAUC(scores []float64, labels []bool) float64 {
	curve := PRCurve(scores, labels)
	if curve == nil {
		return math.NaN()
	}
	return PRAUCFromCurve(curve)
}

// PRAUCFromCurve integrates a pre-computed curve (as returned by PRCurve).
func PRAUCFromCurve(curve []PRPoint) float64 {
	auc := 0.0
	prevRecall := 0.0
	for _, p := range curve {
		auc += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return auc
}

// RecallAtPrecision returns the maximum recall achievable while keeping
// precision at or above minPrecision, along with the score threshold that
// achieves it (Table 4; the production policy in §9 targets 60%). If no
// operating point reaches the precision floor, it returns (0, +Inf).
func RecallAtPrecision(scores []float64, labels []bool, minPrecision float64) (recall, threshold float64) {
	curve := PRCurve(scores, labels)
	best, bestThresh := 0.0, math.Inf(1)
	for _, p := range curve {
		if p.Precision >= minPrecision && p.Recall > best {
			best, bestThresh = p.Recall, p.Threshold
		}
	}
	return best, bestThresh
}

// PrecisionRecallAt returns the realised precision and recall of the policy
// "precompute when score ≥ threshold".
func PrecisionRecallAt(scores []float64, labels []bool, threshold float64) (precision, recall float64) {
	if len(scores) != len(labels) {
		panic("metrics: PrecisionRecallAt: length mismatch")
	}
	tp, fp, pos := 0, 0, 0
	for i, s := range scores {
		if labels[i] {
			pos++
		}
		if s >= threshold {
			if labels[i] {
				tp++
			} else {
				fp++
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if pos > 0 {
		recall = float64(tp) / float64(pos)
	}
	return precision, recall
}

// LogLoss returns the mean binary cross-entropy of predicted probabilities
// against labels, clamping probabilities away from {0, 1}.
func LogLoss(probs []float64, labels []bool) float64 {
	if len(probs) != len(labels) {
		panic("metrics: LogLoss: length mismatch")
	}
	if len(probs) == 0 {
		return 0
	}
	const eps = 1e-12
	var sum float64
	for i, p := range probs {
		if p < eps {
			p = eps
		} else if p > 1-eps {
			p = 1 - eps
		}
		if labels[i] {
			sum -= math.Log(p)
		} else {
			sum -= math.Log(1 - p)
		}
	}
	return sum / float64(len(probs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64 // fraction of values ≤ X
}

// CDF returns the empirical CDF of values evaluated at up to maxPoints
// evenly spaced sample ranks (Figure 1 plots the CDF of per-user access
// rates). The input is not modified.
func CDF(values []float64, maxPoints int) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if maxPoints <= 0 || maxPoints > len(s) {
		maxPoints = len(s)
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		rank := (i + 1) * len(s) / maxPoints
		out = append(out, CDFPoint{X: s[rank-1], Frac: float64(rank) / float64(len(s))})
	}
	return out
}

// HistogramBin is one bin of a fixed-width histogram.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets values into `bins` equal-width bins over [lo, hi);
// values outside the range are clamped into the end bins (Figure 5 caps
// MPU session counts at 20,000).
func Histogram(values []float64, bins int, lo, hi float64) []HistogramBin {
	if bins <= 0 || hi <= lo {
		panic("metrics: Histogram: bad bin spec")
	}
	width := (hi - lo) / float64(bins)
	out := make([]HistogramBin, bins)
	for i := range out {
		out[i].Lo = lo + float64(i)*width
		out[i].Hi = lo + float64(i+1)*width
	}
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		out[idx].Count++
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values using the nearest-
// rank method. The input is not modified.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
