package serving

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/nn"
)

// ParallelStreamProcessor is the multi-core variant of StreamProcessor: the
// event-ingest side (session buffers, finalisation timers, virtual clock)
// stays under one mutex, but due sessions are finalised by a pool of worker
// goroutines. Each worker owns a lane — a FIFO channel — and a user's
// sessions always hash to the same lane, so per-user update order (the only
// order RNNupdate depends on) is preserved while different users' GRU
// updates run concurrently. This mirrors the production deployment of §9,
// where the stream processor is partitioned by user ID exactly like a
// keyed Kafka consumer group.
//
// All methods are safe for concurrent use. Replays that interleave
// predictions with updates and need the sequential path's read-your-writes
// behaviour should call Sync after Advance; the zero-lag equivalence with
// StreamProcessor then holds byte for byte (see
// TestParallelMatchesSequential).
type ParallelStreamProcessor struct {
	model *core.Model
	store Store
	// Epsilon is the processing lag ε added to the session length before
	// the finalisation timer fires.
	Epsilon int64

	mu      sync.Mutex
	buffers map[string]*sessionBuffer
	timers  timerHeap
	now     int64
	closed  bool

	lanes   []chan *sessionBuffer
	workers sync.WaitGroup
	// inferBatch > 1 lets each worker greedily drain up to that many queued
	// sessions from its lane and finalise them through the batched cell.
	inferBatch int
	// precision is fixed at construction (workers read it with no lock;
	// see NewParallelStreamProcessorTier).
	precision nn.PrecisionTier

	// inflight tracks dispatched-but-unfinished finalisations for Sync.
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflight     int

	updatesRun atomic.Int64
}

// NewParallelStreamProcessor wires a model and store and starts `workers`
// finalisation goroutines (<=0 selects GOMAXPROCS). The store must be safe
// for concurrent use; both KVStore and ShardedKVStore are.
func NewParallelStreamProcessor(model *core.Model, store Store, workers int) *ParallelStreamProcessor {
	return NewParallelStreamProcessorBatch(model, store, workers, 1)
}

// NewParallelStreamProcessorBatch is NewParallelStreamProcessor with
// batched finalisation: each worker greedily drains up to inferBatch
// queued sessions from its lane per round and advances them through the
// batched GEMM cell (inferBatch <= 1 keeps the per-session path). Lane
// FIFO order plus the batch's wave partition preserve per-user update
// order, so stored states stay byte-identical to the sequential processor.
func NewParallelStreamProcessorBatch(model *core.Model, store Store, workers, inferBatch int) *ParallelStreamProcessor {
	p, err := NewParallelStreamProcessorTier(model, store, workers, inferBatch, nn.TierF64)
	if err != nil {
		panic(err) // unreachable: the f64 tier needs no cell support
	}
	return p
}

// NewParallelStreamProcessorTier is NewParallelStreamProcessorBatch with an
// explicit finalisation compute tier. The tier is fixed for the processor's
// lifetime — each worker picks its scratch type once at startup, so there
// is no per-session tier check and nothing for workers to race on. TierF32
// requires a cell with an f32 inference tier (see StreamProcessor.SetPrecision).
func NewParallelStreamProcessorTier(model *core.Model, store Store, workers, inferBatch int, tier nn.PrecisionTier) (*ParallelStreamProcessor, error) {
	if tier == nn.TierF32 && !model.SupportsF32() {
		return nil, fmt.Errorf("serving: %s cell has no f32 inference tier", model.Cfg.Cell)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelStreamProcessor{
		model:      model,
		store:      store,
		Epsilon:    core.DefaultEpsilon,
		buffers:    make(map[string]*sessionBuffer),
		lanes:      make([]chan *sessionBuffer, workers),
		inferBatch: inferBatch,
		precision:  tier,
	}
	p.inflightCond = sync.NewCond(&p.inflightMu)
	for i := range p.lanes {
		lane := make(chan *sessionBuffer, 128)
		p.lanes[i] = lane
		p.workers.Add(1)
		go p.runWorker(lane)
	}
	return p, nil
}

func (p *ParallelStreamProcessor) runWorker(lane <-chan *sessionBuffer) {
	defer p.workers.Done()
	if p.inferBatch > 1 {
		p.runWorkerBatched(lane)
		return
	}
	if p.precision == nn.TierF32 {
		scratch := newUpdateScratch32(p.model)
		for buf := range lane {
			applySessionUpdate32(p.model, p.store, buf, scratch)
			p.finishInflight(1)
		}
		return
	}
	scratch := newUpdateScratch(p.model)
	for buf := range lane {
		applySessionUpdate(p.model, p.store, buf, scratch)
		p.finishInflight(1)
	}
}

// runWorkerBatched drains the lane greedily: one blocking receive, then
// non-blocking receives up to the batch size, then one batched
// finalisation. Under light load this degenerates to per-session updates
// (batch of 1); under a backlog the whole group rides two GEMMs per wave.
func (p *ParallelStreamProcessor) runWorkerBatched(lane <-chan *sessionBuffer) {
	// One tier-specific scratch per worker, chosen once; the drain loop is
	// shared via the apply closure so the two tiers cannot drift.
	var apply func(bufs []*sessionBuffer)
	if p.precision == nn.TierF32 {
		bs := newBatchScratch32(p.model, p.inferBatch)
		apply = func(bufs []*sessionBuffer) {
			applySessionUpdateBatch32(p.model, p.store, bufs, bs)
		}
	} else {
		bs := newBatchScratch(p.model, p.inferBatch)
		apply = func(bufs []*sessionBuffer) {
			applySessionUpdateBatch(p.model, p.store, bufs, bs)
		}
	}
	bufs := make([]*sessionBuffer, 0, p.inferBatch)
	for buf := range lane {
		bufs = append(bufs[:0], buf)
	drain:
		for len(bufs) < p.inferBatch {
			select {
			case b, ok := <-lane:
				if !ok {
					break drain // lane closed; the outer range exits next
				}
				bufs = append(bufs, b)
			default:
				break drain
			}
		}
		apply(bufs)
		p.finishInflight(len(bufs))
	}
}

// finishInflight retires n dispatched finalisations and wakes Sync waiters
// when the pipeline empties.
func (p *ParallelStreamProcessor) finishInflight(n int) {
	p.updatesRun.Add(int64(n))
	p.inflightMu.Lock()
	p.inflight -= n
	if p.inflight == 0 {
		p.inflightCond.Broadcast()
	}
	p.inflightMu.Unlock()
}

// UserLane maps a user to one of n lanes (Fibonacci mix over the raw ID —
// no key string is built). It is THE user-partitioning function: the
// worker-pool processor, the online server's micro-batcher, and the load
// generator's connection sharding all call it, so "all of a user's
// sessions ride one lane" holds by construction across every tier.
func UserLane(userID, n int) int {
	h := uint32(userID) * 2654435761
	return int(h % uint32(n))
}

// laneFor maps a user to a worker lane. All of a user's sessions land on
// the same lane, which is what preserves per-user ordering.
func (p *ParallelStreamProcessor) laneFor(userID int) chan<- *sessionBuffer {
	return p.lanes[UserLane(userID, len(p.lanes))]
}

// dispatch hands a finalised buffer to its user's lane. Callers must hold
// p.mu (workers never take it, so the potentially blocking channel send
// cannot deadlock).
func (p *ParallelStreamProcessor) dispatch(buf *sessionBuffer) {
	p.inflightMu.Lock()
	p.inflight++
	p.inflightMu.Unlock()
	p.laneFor(buf.userID) <- buf
}

// Advance moves the virtual clock to ts, dispatching any due sessions to
// the worker pool in timer order. It returns as soon as the due sessions
// are queued; call Sync to wait for the updates to land in the store.
func (p *ParallelStreamProcessor) Advance(ts int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked(ts)
}

func (p *ParallelStreamProcessor) advanceLocked(ts int64) {
	for len(p.timers) > 0 && p.timers[0].fireAt <= ts {
		e := heap.Pop(&p.timers).(timerEntry)
		p.now = e.fireAt
		if buf, ok := p.buffers[e.sessionID]; ok {
			delete(p.buffers, e.sessionID)
			p.dispatch(buf)
		}
	}
	if ts > p.now {
		p.now = ts
	}
}

// OnSessionStart records the context of a new session and arms its
// finalisation timer.
func (p *ParallelStreamProcessor) OnSessionStart(sessionID string, userID int, ts int64, cat []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked(ts)
	p.buffers[sessionID] = &sessionBuffer{
		userID: userID,
		start:  ts,
		cat:    append([]int(nil), cat...),
	}
	heap.Push(&p.timers, timerEntry{
		fireAt:    ts + p.model.Schema.SessionLength + p.Epsilon,
		sessionID: sessionID,
	})
}

// OnAccess records an access event for an in-flight session. Events for
// unknown or already-finalised sessions are dropped (matching at-most-once
// buffering semantics).
func (p *ParallelStreamProcessor) OnAccess(sessionID string, ts int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked(ts)
	if buf, ok := p.buffers[sessionID]; ok {
		buf.accessed = true
	}
}

// Sync blocks until every dispatched finalisation has been applied to the
// store. Advance+Sync is the parallel analogue of the sequential Advance.
func (p *ParallelStreamProcessor) Sync() {
	p.inflightMu.Lock()
	for p.inflight > 0 {
		p.inflightCond.Wait()
	}
	p.inflightMu.Unlock()
}

// Flush dispatches all outstanding timers regardless of the clock (end of
// replay) and waits for the updates to land.
func (p *ParallelStreamProcessor) Flush() {
	p.mu.Lock()
	for len(p.timers) > 0 {
		e := heap.Pop(&p.timers).(timerEntry)
		p.now = e.fireAt
		if buf, ok := p.buffers[e.sessionID]; ok {
			delete(p.buffers, e.sessionID)
			p.dispatch(buf)
		}
	}
	p.mu.Unlock()
	p.Sync()
}

// Close flushes outstanding work and stops the worker pool. The processor
// must not be used after Close.
func (p *ParallelStreamProcessor) Close() {
	p.Flush()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, lane := range p.lanes {
		close(lane)
	}
	p.mu.Unlock()
	p.workers.Wait()
}

// Pending returns the number of in-flight (buffered, not yet dispatched)
// sessions.
func (p *ParallelStreamProcessor) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buffers)
}

// UpdatesRun counts completed GRU executions.
func (p *ParallelStreamProcessor) UpdatesRun() int64 { return p.updatesRun.Load() }

// Workers returns the worker-pool size.
func (p *ParallelStreamProcessor) Workers() int { return len(p.lanes) }

// Precision returns the finalisation compute tier fixed at construction.
func (p *ParallelStreamProcessor) Precision() nn.PrecisionTier { return p.precision }
