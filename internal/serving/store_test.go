package serving

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// storeImpls returns one fresh instance of every in-package Store
// implementation, keyed by name.
func storeImpls() map[string]Store {
	return map[string]Store{
		"KVStore":        NewKVStore(),
		"ShardedKVStore": NewShardedKVStore(4),
	}
}

func TestStoreKeysAndDelete(t *testing.T) {
	for name, s := range storeImpls() {
		t.Run(name, func(t *testing.T) {
			if got := s.Keys(); len(got) != 0 {
				t.Fatalf("empty store has keys: %v", got)
			}
			want := []string{"h:1", "h:2", "h:3"}
			for _, k := range want {
				s.Put(k, []byte{1, 2, 3})
			}
			got := s.Keys()
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
			s.Delete("h:2")
			s.Delete("h:2") // deleting a missing key is a no-op
			got = s.Keys()
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint([]string{"h:1", "h:3"}) {
				t.Fatalf("Keys after delete = %v", got)
			}
		})
	}
}

func TestStoreBytesStoredIncremental(t *testing.T) {
	for name, s := range storeImpls() {
		t.Run(name, func(t *testing.T) {
			check := func(want int64) {
				t.Helper()
				if got := s.Stats().BytesStored; got != want {
					t.Fatalf("BytesStored = %d, want %d", got, want)
				}
			}
			check(0)
			s.Put("aa", make([]byte, 10)) // 2 + 10
			check(12)
			s.Put("b", make([]byte, 5)) // + 1 + 5
			check(18)
			s.Put("aa", make([]byte, 3)) // overwrite: 12 -> 5
			check(11)
			s.Delete("missing")
			check(11)
			s.Delete("aa")
			check(6)
			s.Delete("b")
			check(0)
		})
	}
}

func TestServiceColdStartAndDecodeFailureCounters(t *testing.T) {
	data := synth.GenerateMobileTab(synth.MobileTabConfig{Users: 2, Days: 3, Seed: 9})
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	m := core.New(data.Schema, cfg)

	store := NewKVStore()
	svc := NewPredictionService(m, store, 0.5)

	// No stored state: cold start, not a decode failure.
	svc.OnSessionStart(1, 1000, []int{0, 0})
	if svc.ColdStarts.Load() != 1 || svc.DecodeFailures.Load() != 0 {
		t.Fatalf("miss: cold=%d fail=%d", svc.ColdStarts.Load(), svc.DecodeFailures.Load())
	}

	// Corrupt state: both counters move.
	store.Put(hiddenKey(2), []byte{1, 2, 3})
	svc.OnSessionStart(2, 1000, []int{0, 0})
	if svc.ColdStarts.Load() != 2 || svc.DecodeFailures.Load() != 1 {
		t.Fatalf("corrupt: cold=%d fail=%d", svc.ColdStarts.Load(), svc.DecodeFailures.Load())
	}

	// Wrong dimension: decodes but mismatches StateSize — still a failure.
	wrong := EncodeHidden(make([]float64, m.StateSize()+1), 500)
	store.Put(hiddenKey(3), wrong)
	svc.OnSessionStart(3, 1000, []int{0, 0})
	if svc.ColdStarts.Load() != 3 || svc.DecodeFailures.Load() != 2 {
		t.Fatalf("dim mismatch: cold=%d fail=%d", svc.ColdStarts.Load(), svc.DecodeFailures.Load())
	}

	// Valid state: neither counter moves.
	good := EncodeHidden(make([]float64, m.StateSize()), 500)
	store.Put(hiddenKey(4), good)
	svc.OnSessionStart(4, 1000, []int{0, 0})
	if svc.ColdStarts.Load() != 3 || svc.DecodeFailures.Load() != 2 {
		t.Fatalf("warm: cold=%d fail=%d", svc.ColdStarts.Load(), svc.DecodeFailures.Load())
	}
}
