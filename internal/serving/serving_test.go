package serving

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func TestKVStoreBasics(t *testing.T) {
	s := NewKVStore()
	if _, ok := s.Get("missing"); ok {
		t.Fatalf("missing key must miss")
	}
	s.Put("a", []byte{1, 2, 3})
	v, ok := s.Get("a")
	if !ok || len(v) != 3 || v[0] != 1 {
		t.Fatalf("Get after Put: %v %v", v, ok)
	}
	// Returned slice must be a copy.
	v[0] = 99
	v2, _ := s.Get("a")
	if v2[0] != 1 {
		t.Fatalf("Get must return a copy")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatalf("Delete failed")
	}

	st := s.Stats()
	if st.Gets != 4 || st.Puts != 1 || st.Misses != 2 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestKVStorePutCopies(t *testing.T) {
	s := NewKVStore()
	buf := []byte{1, 2}
	s.Put("k", buf)
	buf[0] = 9
	v, _ := s.Get("k")
	if v[0] != 1 {
		t.Fatalf("Put must copy the value")
	}
}

func TestHiddenCodecRoundTrip(t *testing.T) {
	h := tensor.Vector{0.5, -1.25, 3.75, 0}
	buf := EncodeHidden(h, 123456789)
	if len(buf) != HiddenValueBytes(4) {
		t.Fatalf("encoded size: %d", len(buf))
	}
	got, ts, ok := DecodeHidden(buf)
	if !ok || ts != 123456789 {
		t.Fatalf("decode failed: %v %v", ts, ok)
	}
	for i := range h {
		if got[i] != h[i] { // exactly representable in float32
			t.Fatalf("round trip: %v vs %v", got, h)
		}
	}
	// 128-dim hidden must be 512 bytes + 8-byte timestamp, matching §9.
	if HiddenValueBytes(128) != 520 {
		t.Fatalf("HiddenValueBytes(128) = %d", HiddenValueBytes(128))
	}
}

func TestHiddenCodecRejectsGarbage(t *testing.T) {
	if _, _, ok := DecodeHidden([]byte{1, 2, 3}); ok {
		t.Fatalf("short buffer must fail")
	}
	if _, _, ok := DecodeHidden(make([]byte, 11)); ok {
		t.Fatalf("misaligned buffer must fail")
	}
}

func testModel() *core.Model {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	return core.New(synth.MobileTabSchema(), cfg)
}

func TestStreamProcessorUpdatesHidden(t *testing.T) {
	m := testModel()
	store := NewKVStore()
	p := NewStreamProcessor(m, store)

	start := synth.DefaultStart
	p.OnSessionStart("s1", 7, start, []int{3, 10})
	p.OnAccess("s1", start+60)
	if p.Pending() != 1 {
		t.Fatalf("session should be buffered")
	}
	// Before the timer fires, no hidden state.
	if _, ok := store.Get(hiddenKey(7)); ok {
		t.Fatalf("hidden must not exist before finalisation")
	}
	// Advance past session length + ε.
	p.Advance(start + m.Schema.SessionLength + p.Epsilon + 1)
	if p.Pending() != 0 {
		t.Fatalf("session should be finalised")
	}
	raw, ok := store.Get(hiddenKey(7))
	if !ok {
		t.Fatalf("hidden state missing after finalisation")
	}
	h, ts, ok2 := DecodeHidden(raw)
	if !ok2 || ts != start || len(h) != m.StateSize() {
		t.Fatalf("stored hidden malformed: ts=%d len=%d", ts, len(h))
	}
	if p.UpdatesRun != 1 {
		t.Fatalf("UpdatesRun: %d", p.UpdatesRun)
	}
}

func TestStreamProcessorAccessChangesState(t *testing.T) {
	run := func(access bool) tensor.Vector {
		m := testModel()
		store := NewKVStore()
		p := NewStreamProcessor(m, store)
		start := synth.DefaultStart
		p.OnSessionStart("s", 1, start, []int{0, 0})
		if access {
			p.OnAccess("s", start+10)
		}
		p.Flush()
		raw, _ := store.Get(hiddenKey(1))
		h, _, _ := DecodeHidden(raw)
		return h
	}
	a, b := run(true), run(false)
	diff := 0.0
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1e-6 {
		t.Fatalf("access event must change the stored hidden state")
	}
}

func TestStreamProcessorChainsSessions(t *testing.T) {
	m := testModel()
	store := NewKVStore()
	p := NewStreamProcessor(m, store)
	start := synth.DefaultStart
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("s%d", i)
		ts := start + int64(i)*7200
		p.OnSessionStart(id, 1, ts, []int{i, 0})
		if i%2 == 0 {
			p.OnAccess(id, ts+30)
		}
	}
	p.Flush()
	if p.UpdatesRun != 5 {
		t.Fatalf("UpdatesRun: %d", p.UpdatesRun)
	}
	raw, _ := store.Get(hiddenKey(1))
	_, ts, _ := DecodeHidden(raw)
	if ts != start+4*7200 {
		t.Fatalf("final stored timestamp: %d", ts)
	}
}

func TestStreamProcessorIgnoresUnknownAccess(t *testing.T) {
	m := testModel()
	p := NewStreamProcessor(m, NewKVStore())
	p.OnAccess("ghost", synth.DefaultStart) // must not panic
	if p.Pending() != 0 {
		t.Fatalf("ghost access created a session")
	}
}

func TestPredictionServiceColdStartAndThreshold(t *testing.T) {
	m := testModel()
	store := NewKVStore()
	svc := NewPredictionService(m, store, 2.0) // unreachable threshold
	d := svc.OnSessionStart(42, synth.DefaultStart, []int{0, 0})
	if d.Probability < 0 || d.Probability > 1 {
		t.Fatalf("probability out of range: %v", d.Probability)
	}
	if d.Precompute {
		t.Fatalf("threshold 2.0 must never precompute")
	}
	svc.Threshold = -1
	d = svc.OnSessionStart(42, synth.DefaultStart, []int{0, 0})
	if !d.Precompute {
		t.Fatalf("threshold -1 must always precompute")
	}
	if svc.Predictions.Load() != 2 || svc.Precomputes.Load() != 1 {
		t.Fatalf("counters: %d %d", svc.Predictions.Load(), svc.Precomputes.Load())
	}
}

func TestEndToEndServingLoop(t *testing.T) {
	// Predictions must consult the hidden state produced by earlier
	// sessions: serve two users, one whose history is all accesses and one
	// all skips; after several sessions the access-heavy user should score
	// at least as high. (With an untrained model the direction isn't
	// guaranteed, so train briefly first.)
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 80
	data := synth.GenerateMobileTab(mtCfg)
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 16
	cfg.MLPHidden = 16
	m := core.New(data.Schema, cfg)
	tc := core.DefaultTrainConfig()
	tc.BatchUsers = 4
	tc.Epochs = 2
	core.NewTrainer(m, tc).Train(data)

	store := NewKVStore()
	proc := NewStreamProcessor(m, store)
	svc := NewPredictionService(m, store, 0.5)

	start := synth.DefaultStart
	serve := func(user int, access bool) float64 {
		var last float64
		for i := 0; i < 8; i++ {
			ts := start + int64(i)*4*3600
			id := fmt.Sprintf("u%d-s%d", user, i)
			proc.Advance(ts)
			dec := svc.OnSessionStart(user, ts, []int{5, 10})
			last = dec.Probability
			proc.OnSessionStart(id, user, ts, []int{5, 10})
			if access {
				proc.OnAccess(id, ts+30)
			}
		}
		proc.Flush()
		return last
	}
	pHot := serve(1, true)
	pCold := serve(2, false)
	if pHot <= pCold {
		t.Fatalf("history must matter: hot %v vs cold %v", pHot, pCold)
	}
}

func TestCompareCostsShape(t *testing.T) {
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 50
	d := synth.GenerateMobileTab(mtCfg)
	// Cost comparison is about the production configuration: the paper's
	// 128-dim hidden state and 128-unit MLP.
	ccfg := core.DefaultConfig()
	ccfg.HiddenDim = 128
	ccfg.MLPHidden = 128
	m := core.New(synth.MobileTabSchema(), ccfg)

	gcfg := gbdt.DefaultConfig()
	gcfg.Rounds = 50
	gcfg.MaxDepth = 6
	// A tiny fitted model suffices; costs use config shape.
	X := [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}, {0.2, 0.8}}
	y := []bool{true, false, true, false}
	g := gbdt.Fit(gcfg, X, y)

	r := CompareCosts(m, g, d, DefaultCostParams())

	if r.RNNLookupsPerPrediction != 1 {
		t.Fatalf("RNN must need exactly one lookup")
	}
	// MobileTab: 4 subsets × 4 windows + 4 elapsed groups = 20, the
	// paper's number.
	if r.GBDTLookupsPerPrediction != 20 {
		t.Fatalf("GBDT lookups: %v, want 20", r.GBDTLookupsPerPrediction)
	}
	if r.ModelComputeRatio <= 1 {
		t.Fatalf("RNN model compute must exceed GBDT: %v", r.ModelComputeRatio)
	}
	if r.ServingCostRatio <= 3 {
		t.Fatalf("net serving win should be large: %v", r.ServingCostRatio)
	}
	if r.RNNStateBytes != HiddenValueBytes(m.HiddenDim()) {
		t.Fatalf("state bytes: %d", r.RNNStateBytes)
	}
	if r.AggKeysPerUser <= 1 {
		t.Fatalf("aggregation store must hold many keys per user: %v", r.AggKeysPerUser)
	}
	if r.AggStateBytesPerUser <= float64(r.RNNStateBytes) {
		t.Fatalf("aggregation state (%v B) should dwarf the hidden state (%d B)",
			r.AggStateBytesPerUser, r.RNNStateBytes)
	}
}

func TestOnlineExperimentShape(t *testing.T) {
	// Small end-to-end online replay: train both models on a training
	// split, replay a cold-start cohort, check the Figure 7 shape (RNN
	// eventually ≥ GBDT, both warming up over days).
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 240
	data := synth.GenerateMobileTab(mtCfg)
	split := dataset.SplitUsers(data, 0.25, 9)

	cfg := core.DefaultConfig()
	cfg.HiddenDim = 16
	cfg.MLPHidden = 24
	m := core.New(data.Schema, cfg)
	tc := core.DefaultTrainConfig()
	tc.BatchUsers = 4
	tc.Epochs = 2
	core.NewTrainer(m, tc).Train(split.Train)

	b := features.NewBuilder(data.Schema)
	var X [][]float64
	var y []bool
	b.MinTs = data.CutoffForLastDays(7)
	for _, exs := range b.BuildDataset(split.Train) {
		for _, ex := range exs {
			X = append(X, ex.Dense)
			y = append(y, ex.Label)
		}
	}
	gcfg := gbdt.DefaultConfig()
	gcfg.Rounds = 30
	gcfg.MaxDepth = 4
	g := gbdt.Fit(gcfg, X, y)

	bEval := features.NewBuilder(data.Schema) // MinTs 0: cold start
	res := RunOnlineExperiment(m, g, bEval, split.Test, DefaultOnlineConfig())

	if len(res.RNNDaily) != 30 || len(res.GBDTDaily) != 30 {
		t.Fatalf("daily series length")
	}
	// Late-period averages must be finite and the RNN competitive.
	var rnnLate, gbLate float64
	n := 0
	for day := 14; day < 30; day++ {
		if !math.IsNaN(res.RNNDaily[day]) && !math.IsNaN(res.GBDTDaily[day]) {
			rnnLate += res.RNNDaily[day]
			gbLate += res.GBDTDaily[day]
			n++
		}
	}
	if n < 8 {
		t.Fatalf("too few valid late days: %d", n)
	}
	rnnLate /= float64(n)
	gbLate /= float64(n)
	t.Logf("late-period PR-AUC: RNN %.3f vs GBDT %.3f; recall@60%%: %.3f vs %.3f (gain %.1f%%)",
		rnnLate, gbLate, res.RNNRecall, res.GBDTRecall, 100*res.SuccessfulPrefetchGain)
	if rnnLate <= 0 || gbLate <= 0 {
		t.Fatalf("degenerate late-period AUCs")
	}
}
