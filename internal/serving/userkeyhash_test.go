package serving

import "testing"

// TestUserKeyHashMatchesStringPath pins the alloc-free fast path against
// its definition: UserKeyHash(u) == KeyHash(HiddenKey(u)) for edge and
// random-ish user IDs. The router's splice fan-out routes every event by
// this hash, so divergence would silently re-home users.
func TestUserKeyHashMatchesStringPath(t *testing.T) {
	cases := []int{0, 1, 9, 10, 11, 99, 100, 12345, 1 << 20, 1<<31 - 1}
	for u := 0; u < 10_000; u++ {
		cases = append(cases, u*7919%1_000_003)
	}
	for _, u := range cases {
		if got, want := UserKeyHash(u), KeyHash(HiddenKey(u)); got != want {
			t.Fatalf("UserKeyHash(%d) = %#x, KeyHash(HiddenKey) = %#x", u, got, want)
		}
	}
}

// TestUserKeyHashAllocs: the whole point of the fast path is avoiding the
// per-event key string on the splice path.
func TestUserKeyHashAllocs(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() {
		_ = UserKeyHash(123456789)
	}); allocs != 0 {
		t.Fatalf("UserKeyHash: %v allocs/op, want 0", allocs)
	}
}
