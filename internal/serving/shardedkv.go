package serving

import (
	"sync"
	"sync/atomic"
)

// Store is the key-value surface the serving tier depends on. The
// single-mutex KVStore, the ShardedKVStore, and the durable
// statestore.Store all implement it, so the stream processor and
// prediction service work against any of them.
//
// Implementations must not retain the value slice passed to Put (copy it),
// and Get must return a caller-owned copy: the finalisation hot path
// reuses its encode buffer across Puts, so a retaining store would see
// every state silently overwritten by the next session on the same lane.
//
// Keys exists for sweepers and restart checks (it snapshots the resident
// keyset, in no particular order); it is not a hot-path operation.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
	Delete(key string)
	Keys() []string
	Stats() Stats
}

var (
	_ Store = (*KVStore)(nil)
	_ Store = (*ShardedKVStore)(nil)
)

// DefaultShards is the shard count used when NewShardedKVStore is given a
// non-positive value. 16 shards keep lock contention negligible up to a few
// dozen cores while costing only 16 small maps.
const DefaultShards = 16

// kvShard is one lock domain of the sharded store.
type kvShard struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// ShardedKVStore is a drop-in replacement for KVStore that spreads keys
// over N power-of-two shards, each guarded by its own RWMutex, with the
// access counters kept as atomics so hot-path operations never serialise on
// a global lock. It models the partitioned deployment of the paper's
// "real-time data store similar to Redis" (§9): per-user hidden states are
// independent, so the keyspace shards trivially.
type ShardedKVStore struct {
	shards []kvShard
	mask   uint32

	gets, puts, misses  atomic.Int64
	bytesRead, bytesPut atomic.Int64
	bytesStored         atomic.Int64
}

// NewShardedKVStore returns an empty store with the given shard count
// rounded up to a power of two (<=0 selects DefaultShards).
func NewShardedKVStore(shards int) *ShardedKVStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &ShardedKVStore{shards: make([]kvShard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[string][]byte)
	}
	return s
}

// NumShards returns the (power-of-two) shard count.
func (s *ShardedKVStore) NumShards() int { return len(s.shards) }

// KeyHash is the store keyspace hash (32-bit FNV-1a), exported so other
// Store implementations (statestore) shard identically.
func KeyHash(key string) uint32 { return fnv1a(key) }

// fnv1a is the 32-bit FNV-1a hash of key, inlined to keep the hot path
// allocation-free (hash/fnv forces the key through an io.Writer).
func fnv1a(key string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return h
}

func (s *ShardedKVStore) shard(key string) *kvShard {
	return &s.shards[fnv1a(key)&s.mask]
}

// Get returns a copy of the stored value (nil, false on miss). Every call
// is counted.
func (s *ShardedKVStore) Get(key string) ([]byte, bool) {
	s.gets.Add(1)
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.data[key]
	if !ok {
		sh.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	sh.mu.RUnlock()
	s.bytesRead.Add(int64(len(out)))
	return out, true
}

// Put stores a copy of value under key.
func (s *ShardedKVStore) Put(key string, value []byte) {
	s.puts.Add(1)
	s.bytesPut.Add(int64(len(value)))
	v := make([]byte, len(value))
	copy(v, value)
	delta := int64(len(key) + len(v))
	sh := s.shard(key)
	sh.mu.Lock()
	if old, ok := sh.data[key]; ok {
		delta -= int64(len(key) + len(old))
	}
	sh.data[key] = v
	sh.mu.Unlock()
	s.bytesStored.Add(delta)
}

// Delete removes a key.
func (s *ShardedKVStore) Delete(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	old, ok := sh.data[key]
	delete(sh.data, key)
	sh.mu.Unlock()
	if ok {
		s.bytesStored.Add(-int64(len(key) + len(old)))
	}
}

// Keys snapshots the resident keyset (per-shard consistent, unordered).
func (s *ShardedKVStore) Keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.data {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats returns the current counters and resident footprint. BytesStored
// is maintained incrementally by Put/Delete, so Stats only touches each
// shard for its key count — O(shards), not O(keys), which matters at
// million-user populations.
func (s *ShardedKVStore) Stats() Stats {
	st := Stats{
		Gets: s.gets.Load(), Puts: s.puts.Load(), Misses: s.misses.Load(),
		BytesRead: s.bytesRead.Load(), BytesPut: s.bytesPut.Load(),
		BytesStored: s.bytesStored.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Keys += len(sh.data)
		sh.mu.RUnlock()
	}
	return st
}
