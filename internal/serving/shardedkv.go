package serving

import (
	"sync"
	"sync/atomic"
)

// Store is the key-value surface the serving tier depends on. Both the
// single-mutex KVStore and the ShardedKVStore implement it, so the stream
// processor and prediction service work against either.
//
// Implementations must not retain the value slice passed to Put (copy it),
// and Get must return a caller-owned copy: the finalisation hot path
// reuses its encode buffer across Puts, so a retaining store would see
// every state silently overwritten by the next session on the same lane.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
	Delete(key string)
	Stats() Stats
}

var (
	_ Store = (*KVStore)(nil)
	_ Store = (*ShardedKVStore)(nil)
)

// DefaultShards is the shard count used when NewShardedKVStore is given a
// non-positive value. 16 shards keep lock contention negligible up to a few
// dozen cores while costing only 16 small maps.
const DefaultShards = 16

// kvShard is one lock domain of the sharded store.
type kvShard struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// ShardedKVStore is a drop-in replacement for KVStore that spreads keys
// over N power-of-two shards, each guarded by its own RWMutex, with the
// access counters kept as atomics so hot-path operations never serialise on
// a global lock. It models the partitioned deployment of the paper's
// "real-time data store similar to Redis" (§9): per-user hidden states are
// independent, so the keyspace shards trivially.
type ShardedKVStore struct {
	shards []kvShard
	mask   uint32

	gets, puts, misses  atomic.Int64
	bytesRead, bytesPut atomic.Int64
}

// NewShardedKVStore returns an empty store with the given shard count
// rounded up to a power of two (<=0 selects DefaultShards).
func NewShardedKVStore(shards int) *ShardedKVStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &ShardedKVStore{shards: make([]kvShard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[string][]byte)
	}
	return s
}

// NumShards returns the (power-of-two) shard count.
func (s *ShardedKVStore) NumShards() int { return len(s.shards) }

// fnv1a is the 32-bit FNV-1a hash of key, inlined to keep the hot path
// allocation-free (hash/fnv forces the key through an io.Writer).
func fnv1a(key string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return h
}

func (s *ShardedKVStore) shard(key string) *kvShard {
	return &s.shards[fnv1a(key)&s.mask]
}

// Get returns a copy of the stored value (nil, false on miss). Every call
// is counted.
func (s *ShardedKVStore) Get(key string) ([]byte, bool) {
	s.gets.Add(1)
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.data[key]
	if !ok {
		sh.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	sh.mu.RUnlock()
	s.bytesRead.Add(int64(len(out)))
	return out, true
}

// Put stores a copy of value under key.
func (s *ShardedKVStore) Put(key string, value []byte) {
	s.puts.Add(1)
	s.bytesPut.Add(int64(len(value)))
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shard(key)
	sh.mu.Lock()
	sh.data[key] = v
	sh.mu.Unlock()
}

// Delete removes a key.
func (s *ShardedKVStore) Delete(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	delete(sh.data, key)
	sh.mu.Unlock()
}

// Stats returns the current counters and resident footprint. The per-shard
// scans take each shard's read lock in turn, so the snapshot is per-shard
// consistent (adequate for the cost accounting it feeds).
func (s *ShardedKVStore) Stats() Stats {
	st := Stats{
		Gets: s.gets.Load(), Puts: s.puts.Load(), Misses: s.misses.Load(),
		BytesRead: s.bytesRead.Load(), BytesPut: s.bytesPut.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Keys += len(sh.data)
		for k, v := range sh.data {
			st.BytesStored += int64(len(k) + len(v))
		}
		sh.mu.RUnlock()
	}
	return st
}
