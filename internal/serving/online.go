package serving

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
	"repro/internal/metrics"
)

// OnlineResult reproduces the online experiment of §9: two model variants
// serve the same cohort of users starting from *empty* history, and their
// quality is tracked day by day (Figure 7), plus the production threshold
// comparison (recall at 60% precision; the paper reports 51.1% vs 47.4%, a
// 7.81% lift in successful prefetches).
type OnlineResult struct {
	// Daily PR-AUC series, index = day since experiment start.
	RNNDaily  []float64
	GBDTDaily []float64

	// Threshold policy targeting TargetPrecision.
	TargetPrecision float64
	RNNRecall       float64
	GBDTRecall      float64
	RNNPrecision    float64
	GBDTPrecision   float64
	// SuccessfulPrefetchGain is the relative lift in accesses that were
	// successfully precomputed: (recall_RNN − recall_GBDT)/recall_GBDT.
	SuccessfulPrefetchGain float64
}

// OnlineConfig parameterises the replay.
type OnlineConfig struct {
	// Days is the experiment length (Figure 7 plots 30).
	Days int
	// TargetPrecision for the production threshold (0.6 in §9).
	TargetPrecision float64
}

// DefaultOnlineConfig mirrors the paper.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{Days: 30, TargetPrecision: 0.6}
}

// RunOnlineExperiment replays the cohort's sessions chronologically from an
// empty history through both serving paths:
//
//   - RNN: hidden states via the stream processor semantics (δ-lagged,
//     cold-start from h_0), scored by RNNpredict;
//   - GBDT: aggregation features recomputed on the fly from the history
//     accumulated so far, scored by the trained trees.
//
// Thresholds for the production policy are fitted on the first half of the
// replayed predictions and evaluated on the second half.
func RunOnlineExperiment(rnn *core.Model, gb *gbdt.Model, builder *features.Builder,
	cohort *dataset.Dataset, cfg OnlineConfig) OnlineResult {

	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	if cfg.TargetPrecision <= 0 {
		cfg.TargetPrecision = 0.6
	}

	type obs struct {
		day   int
		score float64
		label bool
	}

	// RNN path: per-user replay with δ-lag (identical to the serving tier:
	// prediction reads the newest state older than t − δ).
	rnnScores, rnnLabels := rnn.EvaluateSessions(cohort, cohort.Start)
	// Per-user offsets into the EvaluateSessions output (one score per
	// session, users emitted contiguously).
	offsets := make([]int, len(cohort.Users))
	idx := 0
	for ui, u := range cohort.Users {
		offsets[ui] = idx
		idx += len(u.Sessions)
	}

	// GBDT path: features replayed from empty history. Per-user feature
	// building and tree scoring are independent (BuildUser allocates a
	// fresh aggregation state, tree scoring is read-only), so fan users
	// across a worker pool and merge in user order for determinism.
	type userObs struct{ rnn, gb []obs }
	perUser := make([]userObs, len(cohort.Users))
	parallelFor(len(cohort.Users), runtime.GOMAXPROCS(0), func(ui int) {
		u := cohort.Users[ui]
		var uo userObs
		for _, ex := range builder.BuildUser(u) {
			day := int((ex.Ts - cohort.Start) / dataset.Day)
			if day >= cfg.Days {
				continue
			}
			uo.gb = append(uo.gb, obs{day: day, score: gb.Predict(ex.Dense), label: ex.Label})
		}
		for si, s := range u.Sessions {
			day := int((s.Timestamp - cohort.Start) / dataset.Day)
			if day < cfg.Days {
				k := offsets[ui] + si
				uo.rnn = append(uo.rnn, obs{day: day, score: rnnScores[k], label: rnnLabels[k]})
			}
		}
		perUser[ui] = uo
	})

	var rnnObs, gbObs []obs
	for _, uo := range perUser {
		rnnObs = append(rnnObs, uo.rnn...)
		gbObs = append(gbObs, uo.gb...)
	}

	res := OnlineResult{TargetPrecision: cfg.TargetPrecision}
	daily := func(os []obs) []float64 {
		out := make([]float64, cfg.Days)
		for day := 0; day < cfg.Days; day++ {
			var scores []float64
			var labels []bool
			for _, o := range os {
				if o.day == day {
					scores = append(scores, o.score)
					labels = append(labels, o.label)
				}
			}
			out[day] = metrics.PRAUC(scores, labels)
		}
		return out
	}
	res.RNNDaily = daily(rnnObs)
	res.GBDTDaily = daily(gbObs)

	// Production threshold: fit on the first half of days, evaluate on the
	// second half (the steady-state regime the paper's numbers describe).
	fit := func(os []obs) (scoresFit []float64, labelsFit []bool, scoresEval []float64, labelsEval []bool) {
		for _, o := range os {
			if o.day < cfg.Days/2 {
				scoresFit = append(scoresFit, o.score)
				labelsFit = append(labelsFit, o.label)
			} else {
				scoresEval = append(scoresEval, o.score)
				labelsEval = append(labelsEval, o.label)
			}
		}
		return
	}
	rf, rl, re, rle := fit(rnnObs)
	_, thrR := metrics.RecallAtPrecision(rf, rl, cfg.TargetPrecision)
	res.RNNPrecision, res.RNNRecall = metrics.PrecisionRecallAt(re, rle, thrR)

	gf, gl, ge, gle := fit(gbObs)
	_, thrG := metrics.RecallAtPrecision(gf, gl, cfg.TargetPrecision)
	res.GBDTPrecision, res.GBDTRecall = metrics.PrecisionRecallAt(ge, gle, thrG)

	if res.GBDTRecall > 0 {
		res.SuccessfulPrefetchGain = (res.RNNRecall - res.GBDTRecall) / res.GBDTRecall
	}
	return res
}
