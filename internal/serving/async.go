package serving

import (
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
)

// The async submit/notify seam: a request-driven server cannot live inside
// the synchronous drain loop (Advance finalising due sessions inline on the
// caller's goroutine), because finalisation is the expensive part and must
// be coalesced across concurrent requests. SetSink inverts the processor
// into an ingest-only front half — session buffers, finalisation timers,
// virtual clock — that hands due sessions to an external sink in drain
// order, and BatchFinalizer is the matching back half: it applies groups of
// due sessions through the wave-partitioned batched GEMM cell, preserving
// the same per-user ordering and byte-identity guarantees as the inline
// paths. internal/server parks the sink's output in bounded per-shard
// queues and flushes them on max-batch/max-wait.

// DueSession is one finalisation-ready session: the joined view of a
// session's start context and access events at the moment its timer fires.
// It is what an async sink finalises.
type DueSession struct {
	UserID   int
	Start    int64
	Cat      []int
	Accessed bool
}

// SetSink diverts due sessions to sink instead of finalising them inline:
// Advance becomes a non-blocking submit path and the sink owner decides
// when (and how batched) the GRU updates run. The sink is called in drain
// order while the processor's invariants hold, so a sink that preserves
// per-user FIFO order (e.g. hash-partitioned queues) keeps stored states
// byte-identical to the inline path. Passing nil restores inline
// finalisation.
func (p *StreamProcessor) SetSink(sink func(DueSession)) { p.sink = sink }

// drainToSink pops every due timer in order and hands the sessions to the
// sink. UpdatesRun is not advanced here — the sink owner counts completed
// finalisations.
func (p *StreamProcessor) drainToSink(ts int64) {
	for len(p.timers) > 0 && p.timers[0].fireAt <= ts {
		e := heap.Pop(&p.timers).(timerEntry)
		p.now = e.fireAt
		if buf, ok := p.buffers[e.sessionID]; ok {
			delete(p.buffers, e.sessionID)
			p.sink(DueSession{
				UserID:   buf.userID,
				Start:    buf.start,
				Cat:      buf.cat,
				Accessed: buf.accessed,
			})
		}
	}
	if ts > p.now {
		p.now = ts
	}
}

// BatchFinalizer applies groups of due sessions through the batched GEMM
// cell, exactly like the inline batched path: groups are wave-partitioned
// by per-user step depth, waves run sequentially, and stored states stay
// byte-identical to per-session finalisation. A finalizer owns its scratch,
// so each instance must be used from one goroutine at a time (one per queue
// flusher); the store may be shared.
type BatchFinalizer struct {
	model    *core.Model
	store    Store
	sc       *batchScratch   // f64 tier
	sc32     *batchScratch32 // f32 tier (nil unless constructed with TierF32)
	maxBatch int
	bufs     []sessionBuffer
	ptrs     []*sessionBuffer
}

// NewBatchFinalizer sizes the finalizer's scratch for groups of up to
// maxBatch sessions (larger inputs are chunked). Finalisation runs on the
// f64 reference tier; use NewBatchFinalizerTier for the f32 fast tier.
func NewBatchFinalizer(model *core.Model, store Store, maxBatch int) *BatchFinalizer {
	f, err := NewBatchFinalizerTier(model, store, maxBatch, nn.TierF64)
	if err != nil {
		panic(err) // unreachable: the f64 tier needs no cell support
	}
	return f
}

// NewBatchFinalizerTier is NewBatchFinalizer with an explicit compute tier,
// fixed for the finalizer's lifetime. TierF32 requires a cell with an f32
// inference tier (see StreamProcessor.SetPrecision); only the selected
// tier's scratch is allocated.
func NewBatchFinalizerTier(model *core.Model, store Store, maxBatch int, tier nn.PrecisionTier) (*BatchFinalizer, error) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	f := &BatchFinalizer{
		model:    model,
		store:    store,
		maxBatch: maxBatch,
		bufs:     make([]sessionBuffer, maxBatch),
		ptrs:     make([]*sessionBuffer, maxBatch),
	}
	if tier == nn.TierF32 {
		if !model.SupportsF32() {
			return nil, fmt.Errorf("serving: %s cell has no f32 inference tier", model.Cfg.Cell)
		}
		f.sc32 = newBatchScratch32(model, maxBatch)
	} else {
		f.sc = newBatchScratch(model, maxBatch)
	}
	for i := range f.bufs {
		f.ptrs[i] = &f.bufs[i]
	}
	return f, nil
}

// Finalize runs the GRU update for every session in due, in order. The
// slice may hold several sessions of the same user; the wave partition
// keeps their updates ordered.
func (f *BatchFinalizer) Finalize(due []DueSession) {
	for len(due) > 0 {
		n := len(due)
		if n > f.maxBatch {
			n = f.maxBatch
		}
		for i := 0; i < n; i++ {
			f.bufs[i] = sessionBuffer{
				userID:   due[i].UserID,
				start:    due[i].Start,
				cat:      due[i].Cat,
				accessed: due[i].Accessed,
			}
		}
		if f.sc32 != nil {
			applySessionUpdateBatch32(f.model, f.store, f.ptrs[:n], f.sc32)
		} else {
			applySessionUpdateBatch(f.model, f.store, f.ptrs[:n], f.sc)
		}
		due = due[n:]
	}
}

// StateDigest hashes the store's entire resident state — every key and its
// wire-format value — into a 256-bit hex digest, and reports how many
// states it covered. Two stores hold byte-identical states iff their
// digests match, which is how the HTTP serving path proves parity with
// in-process sequential replay without shipping every hidden state over
// the wire.
//
// The construction is order-independent: each (key, value) entry is framed
// and hashed on its own (SHA-256), and the per-entry hashes are summed as
// 256-bit integers mod 2^256. Entry order therefore cannot matter, and —
// because every key lives in exactly one store — the digests of stores
// holding disjoint key sets combine with CombineDigests into exactly the
// digest one store holding their union would report. That additivity is
// what lets a user-sharded cluster aggregate per-replica digests into a
// value directly comparable to the single-process sequential digest.
//
// Reads go through Get, so the store's access counters advance; take a
// digest after accounting, not before.
func StateDigest(store Store) (digest string, keys int) {
	var acc [sha256.Size]byte
	var frame [8]byte
	for _, k := range store.Keys() {
		v, ok := store.Get(k)
		if !ok {
			continue
		}
		h := sha256.New()
		binary.LittleEndian.PutUint64(frame[:], uint64(len(k)))
		h.Write(frame[:])
		h.Write([]byte(k))
		binary.LittleEndian.PutUint64(frame[:], uint64(len(v)))
		h.Write(frame[:])
		h.Write(v)
		addDigest(&acc, h.Sum(nil))
		keys++
	}
	return hex.EncodeToString(acc[:]), keys
}

// CombineDigests sums StateDigest values over disjoint key sets: the result
// equals the digest of a single store holding the union of the inputs'
// states. The empty digest (zero keys) is the identity. Inputs must be the
// 64-hex-char values StateDigest produces.
func CombineDigests(digests ...string) (string, error) {
	var acc [sha256.Size]byte
	for _, d := range digests {
		b, err := hex.DecodeString(d)
		if err != nil || len(b) != sha256.Size {
			return "", fmt.Errorf("serving: malformed digest %q", d)
		}
		addDigest(&acc, b)
	}
	return hex.EncodeToString(acc[:]), nil
}

// addDigest accumulates b into acc as little-endian 256-bit integers
// mod 2^256.
func addDigest(acc *[sha256.Size]byte, b []byte) {
	var carry uint16
	for i := 0; i < sha256.Size; i++ {
		carry += uint16(acc[i]) + uint16(b[i])
		acc[i] = byte(carry)
		carry >>= 8
	}
}
