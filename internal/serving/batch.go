package serving

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// Batched session finalisation: instead of advancing one GRU per due
// session (2 matrix-vector products each, re-streaming the 3h×d weight
// matrices from memory every time), due sessions are drained in groups and
// advanced through the batched cell — two GEMMs per wave, weights read
// once per wave.
//
// Correctness hinges on per-user update order (the only order RNNupdate
// depends on): a drained group may hold several sessions of the same user,
// so the group is partitioned into "waves" by per-user step depth — a
// user's k-th session in the group lands in wave k — and the waves run
// sequentially. Within a wave every row belongs to a distinct user, so the
// wave's reads all precede its writes safely, and stored states stay
// byte-identical to the sequential per-session path (pinned by
// TestBatchedFinalisationMatchesSequential).

// batchScratch holds the reusable buffers of the batched finalisation hot
// path — one per sequential processor or per worker lane, like
// updateScratch.
type batchScratch struct {
	scalar *updateScratch // singleton waves take the scalar path
	arena  *tensor.Arena
	enc    []byte
	// seen counts sessions per user within the current group; wave holds
	// each buffer's assigned wave; rows indexes the current wave's buffers;
	// keys holds the current wave's KV keys (built once, used for Get and
	// Put).
	seen map[int]int
	wave []int
	rows []int
	keys []string
}

// newBatchScratch sizes the arena for the worst-case wave (maxBatch rows
// of state/input/next panels plus the cell's gate panels) so the batched
// path never allocates after construction.
func newBatchScratch(m *core.Model, maxBatch int) *batchScratch {
	panel := maxBatch * (2*m.StateSize() + m.UpdateDim())
	return &batchScratch{
		scalar: newUpdateScratch(m),
		arena:  tensor.NewArena(panel + m.BatchUpdateScratchSize(maxBatch)),
		seen:   make(map[int]int),
		keys:   make([]string, 0, maxBatch),
	}
}

// applySessionUpdateBatch finalises a group of due sessions through the
// batched cell, preserving per-user order via wave partitioning. The group
// must be in finalisation (timer) order.
func applySessionUpdateBatch(model *core.Model, store Store, bufs []*sessionBuffer, bs *batchScratch) {
	if len(bufs) == 1 {
		applySessionUpdate(model, store, bufs[0], bs.scalar)
		return
	}
	clear(bs.seen)
	bs.wave = bs.wave[:0]
	maxWave := 0
	for _, b := range bufs {
		w := bs.seen[b.userID]
		bs.seen[b.userID] = w + 1
		bs.wave = append(bs.wave, w)
		if w > maxWave {
			maxWave = w
		}
	}
	for w := 0; w <= maxWave; w++ {
		bs.rows = bs.rows[:0]
		for i, bw := range bs.wave {
			if bw == w {
				bs.rows = append(bs.rows, i)
			}
		}
		bs.applyWave(model, store, bufs)
	}
}

// applyWave runs one wave (bs.rows) of the group: gather states and inputs
// into panels, one batched cell advance, scatter the results back to the
// store. Get/Put counts per session match the scalar path exactly.
func (bs *batchScratch) applyWave(model *core.Model, store Store, bufs []*sessionBuffer) {
	if len(bs.rows) == 1 {
		applySessionUpdate(model, store, bufs[bs.rows[0]], bs.scalar)
		return
	}
	w := len(bs.rows)
	bs.arena.Reset()
	states := bs.arena.Matrix(w, model.StateSize())
	xs := bs.arena.Matrix(w, model.UpdateDim())
	next := bs.arena.Matrix(w, model.StateSize())
	bs.keys = bs.keys[:0]
	for r, bi := range bs.rows {
		buf := bufs[bi]
		bs.keys = append(bs.keys, hiddenKey(buf.userID))
		row := states.Row(r)
		var lastTS int64
		decoded := false
		if raw, found := store.Get(bs.keys[r]); found {
			lastTS, decoded = DecodeHiddenInto(raw, row)
		}
		if !decoded {
			row.Zero() // h_0 (§6.1)
			lastTS = 0
		}
		var dt int64
		if lastTS != 0 {
			dt = buf.start - lastTS
		}
		model.BuildUpdateInput(buf.start, buf.cat, buf.accessed, dt, xs.Row(r))
	}
	model.UpdateStatesInto(next, states, xs, bs.arena)
	for r, bi := range bs.rows {
		buf := bufs[bi]
		bs.enc = EncodeHiddenInto(bs.enc, next.Row(r), buf.start)
		store.Put(bs.keys[r], bs.enc)
	}
}
