package serving

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// replayScalar32 replays evs through a sequential per-session processor on
// the f32 tier — the reference every other f32 path must match byte for
// byte.
func replayScalar32(t *testing.T, m *core.Model, evs []replayEvent) *KVStore {
	t.Helper()
	store := NewKVStore()
	p := NewStreamProcessor(m, store)
	if err := p.SetPrecision(nn.TierF32); err != nil {
		t.Fatalf("SetPrecision(f32): %v", err)
	}
	for _, e := range evs {
		p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			p.OnAccess(e.sid, e.ts+30)
		}
	}
	p.Flush()
	return store
}

// TestF32FinalisationMatchesAcrossPaths is the f32 tier's replay
// equivalence: sequential batched drains, the parallel worker pool, and the
// async BatchFinalizer must all store states byte-identical to the scalar
// f32 path, exactly as the f64 paths match theirs.
func TestF32FinalisationMatchesAcrossPaths(t *testing.T) {
	m := testModel()
	const users = 24
	evs := syntheticLog(users, 6)
	want := replayScalar32(t, m, evs)

	for _, batch := range []int{2, 7, 16, 64} {
		store := NewKVStore()
		p := NewStreamProcessor(m, store)
		p.SetInferBatch(batch)
		if err := p.SetPrecision(nn.TierF32); err != nil {
			t.Fatalf("SetPrecision(f32): %v", err)
		}
		for _, e := range evs {
			p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
			if e.access {
				p.OnAccess(e.sid, e.ts+30)
			}
		}
		p.Flush()
		if p.UpdatesRun != int64(len(evs)) {
			t.Fatalf("batch %d: UpdatesRun %d, want %d", batch, p.UpdatesRun, len(evs))
		}
		if st := store.Stats(); st.Gets != int64(len(evs)) || st.Puts != int64(len(evs)) {
			t.Fatalf("batch %d: store traffic %d gets / %d puts, want %d each", batch, st.Gets, st.Puts, len(evs))
		}
		requireSameStates(t, fmt.Sprintf("f32 sequential batch %d", batch), users, want, store)

		parStore := NewShardedKVStore(16)
		par, err := NewParallelStreamProcessorTier(m, parStore, 4, batch, nn.TierF32)
		if err != nil {
			t.Fatalf("parallel f32: %v", err)
		}
		for _, e := range evs {
			par.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
			if e.access {
				par.OnAccess(e.sid, e.ts+30)
			}
		}
		par.Close()
		if got := par.UpdatesRun(); got != int64(len(evs)) {
			t.Fatalf("parallel f32 batch %d: UpdatesRun %d, want %d", batch, got, len(evs))
		}
		requireSameStates(t, fmt.Sprintf("f32 parallel batch %d", batch), users, want, parStore)
	}
}

// TestF32BatchFinalizer drives the async back half on the f32 tier: due
// sessions in event order through NewBatchFinalizerTier must match the
// scalar f32 replay (per-user order is preserved by the wave partition).
func TestF32BatchFinalizer(t *testing.T) {
	m := testModel()
	const users = 12
	evs := syntheticLog(users, 5)
	want := replayScalar32(t, m, evs)

	due := make([]DueSession, 0, len(evs))
	for _, e := range evs {
		due = append(due, DueSession{
			UserID:   e.userID,
			Start:    e.ts,
			Cat:      e.cat,
			Accessed: e.access,
		})
	}
	for _, maxBatch := range []int{3, 16, len(evs)} {
		store := NewKVStore()
		f, err := NewBatchFinalizerTier(m, store, maxBatch, nn.TierF32)
		if err != nil {
			t.Fatalf("NewBatchFinalizerTier: %v", err)
		}
		f.Finalize(due)
		requireSameStates(t, fmt.Sprintf("f32 finalizer max %d", maxBatch), users, want, store)
	}
}

// TestF32WavePartition forces many sessions of the same users into a single
// f32 drain, so correctness depends on the f32 wave partition applying each
// user's sessions in order.
func TestF32WavePartition(t *testing.T) {
	m := testModel()
	const users = 5
	const rounds = 9
	var evs []replayEvent
	start := synth.DefaultStart
	for r := 0; r < rounds; r++ {
		for u := 0; u < users; u++ {
			evs = append(evs, replayEvent{
				sid:    fmt.Sprintf("u%d-s%d", u, r),
				userID: u,
				ts:     start + int64(r*users+u),
				cat:    []int{(u + r) % 4, r % 3},
				access: r%2 == 0,
			})
		}
	}
	want := replayScalar32(t, m, evs)

	store := NewKVStore()
	p := NewStreamProcessor(m, store)
	p.SetInferBatch(users * rounds) // one group holds every session
	if err := p.SetPrecision(nn.TierF32); err != nil {
		t.Fatalf("SetPrecision(f32): %v", err)
	}
	for _, e := range evs {
		p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			p.OnAccess(e.sid, e.ts+1)
		}
	}
	p.Flush()
	requireSameStates(t, "f32 wave partition", users, want, store)
}

// TestF32TierBoundedErrorVsF64 pins the cross-tier contract: over a chained
// multi-session replay, every stored f32 state stays within float32
// round-off of the f64 reference, and the timestamps agree exactly.
func TestF32TierBoundedErrorVsF64(t *testing.T) {
	m := testModel()
	const users = 16
	evs := syntheticLog(users, 8)
	f64Store := replayScalar(m, evs)
	f32Store := replayScalar32(t, m, evs)

	h64 := tensor.NewVector(m.StateSize())
	h32 := tensor.NewVector32(m.StateSize())
	maxErr := 0.0
	for u := 0; u < users; u++ {
		a, okA := f64Store.Get(hiddenKey(u))
		b, okB := f32Store.Get(hiddenKey(u))
		if !okA || !okB {
			t.Fatalf("user %d: missing state (f64 %v, f32 %v)", u, okA, okB)
		}
		tsA, decA := DecodeHiddenInto(a, h64)
		tsB, decB := DecodeHiddenInto32(b, h32)
		if !decA || !decB {
			t.Fatalf("user %d: decode failed (f64 %v, f32 %v)", u, decA, decB)
		}
		if tsA != tsB {
			t.Fatalf("user %d: lastTS %d (f64) vs %d (f32)", u, tsA, tsB)
		}
		for i := range h64 {
			if d := math.Abs(h64[i] - float64(h32[i])); d > maxErr {
				maxErr = d
			}
		}
	}
	// GRU states live in (-1, 1); after 8 chained sessions the tiers should
	// agree to well under 1e-3 absolute.
	if maxErr > 2e-3 {
		t.Fatalf("f32 tier diverged from f64: max abs error %v", maxErr)
	}
}

// TestF32PrecisionRequiresCellSupport: cells without the f32 tier must be
// rejected at every construction/selection point, and the processor must
// stay on the f64 tier afterwards.
func TestF32PrecisionRequiresCellSupport(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Cell = nn.CellLSTM
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	lstm := core.New(synth.MobileTabSchema(), cfg)
	if lstm.SupportsF32() {
		t.Fatal("LSTM must not report f32 support")
	}

	p := NewStreamProcessor(lstm, NewKVStore())
	if err := p.SetPrecision(nn.TierF32); err == nil {
		t.Fatal("SetPrecision(f32) must fail for an LSTM cell")
	}
	if p.Precision() != nn.TierF64 {
		t.Fatalf("precision after rejected switch: %v, want f64", p.Precision())
	}
	if _, err := NewParallelStreamProcessorTier(lstm, NewShardedKVStore(4), 2, 4, nn.TierF32); err == nil {
		t.Fatal("NewParallelStreamProcessorTier(f32) must fail for an LSTM cell")
	}
	if _, err := NewBatchFinalizerTier(lstm, NewKVStore(), 8, nn.TierF32); err == nil {
		t.Fatal("NewBatchFinalizerTier(f32) must fail for an LSTM cell")
	}

	// Stacked GRUs have no f32 tier either (yet).
	cfg = core.DefaultConfig()
	cfg.Cell = nn.CellGRU
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	cfg.Layers = 2
	if core.New(synth.MobileTabSchema(), cfg).SupportsF32() {
		t.Fatal("stacked GRU must not report f32 support")
	}

	// The f64 tier is always available.
	if err := p.SetPrecision(nn.TierF64); err != nil {
		t.Fatalf("SetPrecision(f64): %v", err)
	}
}

// TestHiddenCodec32 pins the shared-wire property: the f32 codec reads what
// the f64 codec wrote (and vice versa), because the wire format is float32
// either way.
func TestHiddenCodec32(t *testing.T) {
	h32 := tensor.Vector32{0.5, -0.25, 0.125, -1}
	buf := EncodeHiddenInto32(nil, h32, 777)

	// f32 round trip is exact.
	got32 := tensor.NewVector32(4)
	ts, ok := DecodeHiddenInto32(buf, got32)
	if !ok || ts != 777 {
		t.Fatalf("f32 decode: ok=%v ts=%d", ok, ts)
	}
	for i := range h32 {
		if math.Float32bits(got32[i]) != math.Float32bits(h32[i]) {
			t.Fatalf("f32 round trip %d: %v -> %v", i, h32[i], got32[i])
		}
	}

	// The f64 codec reads the f32-written bytes by exact widening.
	got64 := tensor.NewVector(4)
	ts, ok = DecodeHiddenInto(buf, got64)
	if !ok || ts != 777 {
		t.Fatalf("f64 decode of f32 bytes: ok=%v ts=%d", ok, ts)
	}
	for i := range h32 {
		if got64[i] != float64(h32[i]) {
			t.Fatalf("cross-tier widen %d: %v -> %v", i, h32[i], got64[i])
		}
	}

	// And the f32 codec reads f64-written bytes (rounded at encode time).
	h64 := tensor.Vector{0.1, -0.9, 0.3, 1.5}
	buf64 := EncodeHiddenInto(nil, h64, 42)
	ts, ok = DecodeHiddenInto32(buf64, got32)
	if !ok || ts != 42 {
		t.Fatalf("f32 decode of f64 bytes: ok=%v ts=%d", ok, ts)
	}
	for i := range h64 {
		if got32[i] != float32(h64[i]) {
			t.Fatalf("cross-tier narrow %d: %v -> %v", i, h64[i], got32[i])
		}
	}

	// Dimension mismatch fails, same as the f64 codec.
	if _, ok := DecodeHiddenInto32(buf, tensor.NewVector32(5)); ok {
		t.Fatal("dimension mismatch must fail")
	}
	if _, ok := DecodeHiddenInto32(buf[:7], got32); ok {
		t.Fatal("truncated buffer must fail")
	}
}
