package serving

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// PredictionService is the session-startup path of §9: retrieve the most
// recent hidden state (one KV lookup), run the MLP part of the model with
// the current context, and precompute eagerly when the probability clears
// the threshold.
type PredictionService struct {
	model *core.Model
	store *KVStore
	// Threshold is the precompute decision boundary, chosen offline to
	// target a precision (60% in the production experiment).
	Threshold float64

	// Decision counters for the precision/recall bookkeeping.
	Predictions int64
	Precomputes int64
}

// NewPredictionService wires a model and store.
func NewPredictionService(model *core.Model, store *KVStore, threshold float64) *PredictionService {
	return &PredictionService{model: model, store: store, Threshold: threshold}
}

// Decision is the outcome of one session-startup prediction.
type Decision struct {
	Probability float64
	Precompute  bool
}

// OnSessionStart serves one prediction. Users with no stored hidden state
// fall back to h_0 (cold start, §9).
func (s *PredictionService) OnSessionStart(userID int, ts int64, cat []int) Decision {
	var h tensor.Vector
	var lastTS int64
	if raw, ok := s.store.Get(hiddenKey(userID)); ok {
		if dec, t, ok2 := DecodeHidden(raw); ok2 && len(dec) == s.model.StateSize() {
			h, lastTS = dec, t
		}
	}
	if h == nil {
		h = s.model.InitialState()
	}
	var sinceK int64
	if lastTS != 0 {
		sinceK = ts - lastTS
	}
	f := s.model.BuildPredictInput(ts, cat, sinceK, nil)
	p := s.model.Predict(h[:s.model.HiddenDim()], f)
	s.Predictions++
	d := Decision{Probability: p, Precompute: p >= s.Threshold}
	if d.Precompute {
		s.Precomputes++
	}
	return d
}
