package serving

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/tensor"
)

// PredictionService is the session-startup path of §9: retrieve the most
// recent hidden state (one KV lookup), run the MLP part of the model with
// the current context, and precompute eagerly when the probability clears
// the threshold.
//
// The service is safe for concurrent use: model inference is read-only,
// the store is concurrency-safe, and the decision counters are atomics.
type PredictionService struct {
	model *core.Model
	store Store
	// Threshold is the precompute decision boundary, chosen offline to
	// target a precision (60% in the production experiment).
	Threshold float64

	// Decision counters for the precision/recall bookkeeping (atomics so
	// batch fan-out never races, and aligned on 32-bit platforms).
	Predictions atomic.Int64
	Precomputes atomic.Int64
	// ColdStarts counts predictions served from h_0 because no usable
	// hidden state was stored (miss, decode failure, or dimension
	// mismatch); DecodeFailures counts the subset where a state WAS stored
	// but could not be used. A nonzero DecodeFailures means the store is
	// corrupting or mis-sizing states — before these counters existed, that
	// was silently indistinguishable from a new user.
	ColdStarts     atomic.Int64
	DecodeFailures atomic.Int64
}

// NewPredictionService wires a model and store.
func NewPredictionService(model *core.Model, store Store, threshold float64) *PredictionService {
	return &PredictionService{model: model, store: store, Threshold: threshold}
}

// Decision is the outcome of one session-startup prediction.
type Decision struct {
	Probability float64
	Precompute  bool
}

// OnSessionStart serves one prediction. Users with no stored hidden state
// fall back to h_0 (cold start, §9).
func (s *PredictionService) OnSessionStart(userID int, ts int64, cat []int) Decision {
	var h tensor.Vector
	var lastTS int64
	if raw, ok := s.store.Get(hiddenKey(userID)); ok {
		if dec, t, ok2 := DecodeHidden(raw); ok2 && len(dec) == s.model.StateSize() {
			h, lastTS = dec, t
		} else {
			s.DecodeFailures.Add(1)
		}
	}
	if h == nil {
		s.ColdStarts.Add(1)
		h = s.model.InitialState()
	}
	var sinceK int64
	if lastTS != 0 {
		sinceK = ts - lastTS
	}
	f := s.model.BuildPredictInput(ts, cat, sinceK, nil)
	p := s.model.Predict(h[:s.model.HiddenDim()], f)
	s.Predictions.Add(1)
	d := Decision{Probability: p, Precompute: p >= s.Threshold}
	if d.Precompute {
		s.Precomputes.Add(1)
	}
	return d
}

// PredictRequest is one element of a prediction batch.
type PredictRequest struct {
	UserID int
	Ts     int64
	Cat    []int
}

// OnSessionStartBatch serves a batch of independent predictions, fanning
// the requests across `workers` goroutines (<=0 selects GOMAXPROCS).
// Results are returned in request order; decisions are identical to
// calling OnSessionStart per request, because predictions read the store
// but never write it. This is the multi-core session-startup path: at peak
// traffic the serving tier receives many session starts per scheduling
// quantum, and each prediction is one KV read plus a small MLP, so the
// batch parallelises near-linearly.
func (s *PredictionService) OnSessionStartBatch(reqs []PredictRequest, workers int) []Decision {
	out := make([]Decision, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallelFor(len(reqs), workers, func(i int) {
		r := reqs[i]
		out[i] = s.OnSessionStart(r.UserID, r.Ts, r.Cat)
	})
	return out
}

// parallelFor runs fn(0..n-1) across `workers` work-stealing goroutines
// (workers <= 1 runs inline). fn must be safe to call concurrently for
// distinct indices.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
