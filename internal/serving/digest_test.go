package serving

import (
	"fmt"
	"testing"
)

// TestStateDigestCombinesAcrossShards pins the cluster digest contract:
// splitting a store's keys across disjoint stores and combining their
// digests yields exactly the whole store's digest, regardless of which
// store holds which key — the property that makes a user-sharded cluster's
// aggregate digest comparable to the single-process sequential digest.
func TestStateDigestCombinesAcrossShards(t *testing.T) {
	whole := NewKVStore()
	parts := []*KVStore{NewKVStore(), NewKVStore(), NewKVStore()}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("h:%d", i)
		val := []byte(fmt.Sprintf("state-%d-%d", i, i*i))
		whole.Put(key, val)
		parts[i%3].Put(key, val)
	}
	wantDigest, wantKeys := StateDigest(whole)
	if wantKeys != 100 {
		t.Fatalf("keys = %d", wantKeys)
	}

	var partDigests []string
	totalKeys := 0
	for _, p := range parts {
		d, k := StateDigest(p)
		partDigests = append(partDigests, d)
		totalKeys += k
	}
	got, err := CombineDigests(partDigests...)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantDigest || totalKeys != wantKeys {
		t.Fatalf("combined digest %s (%d keys), want %s (%d keys)", got, totalKeys, wantDigest, wantKeys)
	}

	// Combination order cannot matter.
	reordered, err := CombineDigests(partDigests[2], partDigests[0], partDigests[1])
	if err != nil {
		t.Fatal(err)
	}
	if reordered != wantDigest {
		t.Fatal("combined digest depends on replica order")
	}

	// The empty digest is the identity...
	empty, _ := StateDigest(NewKVStore())
	withEmpty, err := CombineDigests(append(partDigests, empty)...)
	if err != nil {
		t.Fatal(err)
	}
	if withEmpty != wantDigest {
		t.Fatal("empty-store digest is not the identity")
	}

	// ...and a changed value changes the whole.
	parts[1].Put("h:1", []byte("corrupted"))
	d1, _ := StateDigest(parts[1])
	changed, err := CombineDigests(partDigests[0], d1, partDigests[2])
	if err != nil {
		t.Fatal(err)
	}
	if changed == wantDigest {
		t.Fatal("digest failed to detect a changed state")
	}

	if _, err := CombineDigests("zz"); err == nil {
		t.Fatal("malformed digest must error")
	}
}
