package serving

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// asyncTestModel builds a small untrained model (weights are
// deterministic given the seed, which is all equivalence tests need).
func asyncTestModel(t *testing.T, hidden int) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HiddenDim = hidden
	cfg.Seed = 11
	return core.New(synth.MobileTabSchema(), cfg)
}

// TestSinkFinalizerMatchesInline proves the async seam end to end at the
// package level: routing due sessions through SetSink into a
// BatchFinalizer (batching them in arbitrary group sizes) stores states
// byte-identical to the inline synchronous drain loop.
func TestSinkFinalizerMatchesInline(t *testing.T) {
	m := asyncTestModel(t, 24)
	window := m.Schema.SessionLength + core.DefaultEpsilon

	type ev struct {
		sid    string
		user   int
		ts     int64
		cat    []int
		access bool
	}
	var evs []ev
	base := synth.DefaultStart
	for i := 0; i < 400; i++ {
		u := i % 23 // several sessions per user, some in the same drain
		evs = append(evs, ev{
			sid: fmt.Sprintf("u%d-s%d", u, i), user: u,
			ts:     base + int64(i)*97,
			cat:    []int{i % 4, i % 3},
			access: i%3 == 0,
		})
	}
	advanceEvery := 50 // periodic clock jumps make multi-session drains
	run := func(p *StreamProcessor, store Store, flushQueue func()) {
		for i, e := range evs {
			p.OnSessionStart(e.sid, e.user, e.ts, e.cat)
			if e.access {
				p.OnAccess(e.sid, e.ts+30)
			}
			if (i+1)%advanceEvery == 0 {
				p.Advance(e.ts + window + 1)
				if flushQueue != nil {
					flushQueue()
				}
			}
		}
		p.Flush()
		if flushQueue != nil {
			flushQueue()
		}
	}

	inline := NewKVStore()
	run(NewStreamProcessor(m, inline), inline, nil)

	// Async: the sink parks due sessions; the queue is flushed through the
	// batched finalizer in uneven group sizes.
	async := NewKVStore()
	p := NewStreamProcessor(m, async)
	fin := NewBatchFinalizer(m, async, 8)
	var queue []DueSession
	p.SetSink(func(d DueSession) { queue = append(queue, d) })
	sizes := []int{1, 7, 3, 8, 2}
	si := 0
	flushQueue := func() {
		for len(queue) > 0 {
			n := sizes[si%len(sizes)]
			si++
			if n > len(queue) {
				n = len(queue)
			}
			fin.Finalize(queue[:n])
			queue = queue[n:]
		}
	}
	run(p, async, flushQueue)

	gotDigest, _ := StateDigest(async)
	wantDigest, _ := StateDigest(inline)
	if gotDigest != wantDigest {
		t.Fatalf("digest mismatch: async %s vs inline %s", gotDigest, wantDigest)
	}
	keys := inline.Keys()
	if len(keys) == 0 {
		t.Fatal("no states stored")
	}
	for _, k := range keys {
		a, ok1 := inline.Get(k)
		b, ok2 := async.Get(k)
		if !ok1 || !ok2 || !bytes.Equal(a, b) {
			t.Fatalf("state %s differs between inline and async paths", k)
		}
	}
}

// TestStateDigestDetectsDifferences pins the digest's sensitivity: any
// byte flip or key change must change it.
func TestStateDigestDetectsDifferences(t *testing.T) {
	a := NewKVStore()
	b := NewKVStore()
	a.Put("h:1", []byte{1, 2, 3})
	b.Put("h:1", []byte{1, 2, 3})
	if da, _ := StateDigest(a); !equalDigest(da, b) {
		t.Fatal("equal stores must digest equally")
	}
	b.Put("h:1", []byte{1, 2, 4})
	if da, _ := StateDigest(a); equalDigest(da, b) {
		t.Fatal("value flip must change the digest")
	}
	b.Put("h:1", []byte{1, 2, 3})
	b.Put("h:2", []byte{9})
	if da, _ := StateDigest(a); equalDigest(da, b) {
		t.Fatal("extra key must change the digest")
	}
}

// equalDigest reports whether digest equals store's current digest.
func equalDigest(digest string, store Store) bool {
	d, _ := StateDigest(store)
	return digest == d
}
