package serving

import (
	"container/heap"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// The stream processor reproduces §9's update pipeline: context variables
// are published at session start, access events arrive during the session,
// both tagged by session ID; a timer fires after the session length (+
// processing lag ε), at which point the processor joins the buffered
// events, retrieves the user's hidden state, executes the GRU part of the
// model and writes the new hidden state back.

// sessionBuffer accumulates the events of one in-flight session.
type sessionBuffer struct {
	userID   int
	start    int64
	cat      []int
	accessed bool
}

// timerEntry schedules a session finalisation.
type timerEntry struct {
	fireAt    int64
	sessionID string
}

type timerHeap []timerEntry

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].fireAt < h[j].fireAt }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// StreamProcessor consumes session-start and access events (the Kafka
// analogue) and maintains per-user hidden states in the KV store.
type StreamProcessor struct {
	model *core.Model
	store Store
	// Epsilon is the processing lag ε added to the session length before
	// the finalisation timer fires.
	Epsilon int64

	buffers map[string]*sessionBuffer
	timers  timerHeap
	now     int64
	scratch *updateScratch

	// precision selects the compute tier of finalisation: TierF64 (the
	// bit-exact training reference, default) or TierF32 (the fused float32
	// kernels; see SetPrecision). The stored wire format is the same either
	// way, so the tier can be switched mid-replay without a store rewrite.
	precision nn.PrecisionTier
	scratch32 *updateScratch32

	// inferBatch > 1 drains due sessions in groups of up to that size and
	// finalises them through the batched GEMM cell path (see batch.go).
	inferBatch int
	batchSc    *batchScratch
	batchSc32  *batchScratch32
	due        []*sessionBuffer

	// sink, when set, receives due sessions instead of inline finalisation
	// (the async submit seam; see async.go).
	sink func(DueSession)

	// UpdatesRun counts GRU executions (the paper's most expensive model
	// component runs once per session, off the critical path).
	UpdatesRun int64
}

// NewStreamProcessor wires a model and store.
func NewStreamProcessor(model *core.Model, store Store) *StreamProcessor {
	return &StreamProcessor{
		model:   model,
		store:   store,
		Epsilon: core.DefaultEpsilon,
		buffers: make(map[string]*sessionBuffer),
		scratch: newUpdateScratch(model),
	}
}

// SetInferBatch selects batched finalisation: due sessions are drained in
// groups of up to n and advanced through the batched cell, which computes
// all gate pre-activations as two GEMMs per wave instead of two
// matrix-vector products per session. n <= 1 restores the per-session
// path. Stored states are byte-identical either way.
func (p *StreamProcessor) SetInferBatch(n int) {
	if n <= 1 {
		p.inferBatch, p.batchSc = 0, nil
		return
	}
	p.inferBatch = n
	p.batchSc = newBatchScratch(p.model, n)
	if p.precision == nn.TierF32 {
		p.batchSc32 = newBatchScratch32(p.model, n)
	}
}

// SetPrecision selects the finalisation compute tier. TierF32 routes
// session updates through the fused float32 kernels — roughly 2-4× the f64
// throughput at the paper's hidden sizes — and requires a cell with an f32
// tier (the GRU; stacked/LSTM/tanh cells return an error). All f32 paths
// store bit-identical states; agreement with the f64 tier is bounded-error
// (see DESIGN.md "Precision tiers"). Not safe to call concurrently with
// event ingestion.
func (p *StreamProcessor) SetPrecision(t nn.PrecisionTier) error {
	if t == nn.TierF32 && !p.model.SupportsF32() {
		return fmt.Errorf("serving: %s cell has no f32 inference tier", p.model.Cfg.Cell)
	}
	p.precision = t
	if t == nn.TierF32 {
		if p.scratch32 == nil {
			p.scratch32 = newUpdateScratch32(p.model)
		}
		if p.inferBatch > 1 && p.batchSc32 == nil {
			p.batchSc32 = newBatchScratch32(p.model, p.inferBatch)
		}
	}
	return nil
}

// Precision returns the finalisation compute tier.
func (p *StreamProcessor) Precision() nn.PrecisionTier { return p.precision }

// hiddenKey is the per-user KV key.
func hiddenKey(userID int) string { return "h:" + strconv.Itoa(userID) }

// HiddenKey exposes the per-user KV key to the cluster tier: a user's ring
// position is the hash of their hidden-state key, so routing a user and
// matching their stored key against a hash arc agree by construction.
func HiddenKey(userID int) string { return hiddenKey(userID) }

// UserKeyHash is KeyHash(HiddenKey(userID)) computed without building the
// key string. The router's splice path calls it once per event, so the
// digits render into a stack buffer and hash in place; a test pins the
// equivalence against the string path.
func UserKeyHash(userID int) uint32 {
	var buf [24]byte
	b := append(buf[:0], 'h', ':')
	b = strconv.AppendInt(b, int64(userID), 10)
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime
	}
	return h
}

// updateScratch holds the reusable buffers of the finalisation hot path —
// one per processor (sequential) or per worker lane (parallel), so GRU
// updates run allocation-free apart from the store's defensive copies.
type updateScratch struct {
	state, next, in, cell tensor.Vector
	enc                   []byte
}

func newUpdateScratch(m *core.Model) *updateScratch {
	return &updateScratch{
		state: tensor.NewVector(m.StateSize()),
		next:  tensor.NewVector(m.StateSize()),
		in:    tensor.NewVector(m.UpdateDim()),
		cell:  tensor.NewVector(m.UpdateScratchSize()),
	}
}

// Advance moves the virtual clock to ts, firing any due timers in order.
// With a sink set (SetSink), due sessions are submitted to it instead of
// being finalised inline.
func (p *StreamProcessor) Advance(ts int64) {
	if p.sink != nil {
		p.drainToSink(ts)
		return
	}
	if p.inferBatch > 1 {
		p.drainBatched(ts)
		if ts > p.now {
			p.now = ts
		}
		return
	}
	for len(p.timers) > 0 && p.timers[0].fireAt <= ts {
		e := heap.Pop(&p.timers).(timerEntry)
		p.now = e.fireAt
		p.finalize(e.sessionID)
	}
	if ts > p.now {
		p.now = ts
	}
}

// drainBatched pops every timer due at ts, in timer order, and finalises
// the sessions in groups of up to inferBatch. Group chunking preserves the
// global drain order, and the wave partition inside each group preserves
// per-user order, so stored states match the per-session path byte for
// byte.
func (p *StreamProcessor) drainBatched(ts int64) {
	for len(p.timers) > 0 && p.timers[0].fireAt <= ts {
		p.due = p.due[:0]
		for len(p.timers) > 0 && p.timers[0].fireAt <= ts && len(p.due) < p.inferBatch {
			e := heap.Pop(&p.timers).(timerEntry)
			p.now = e.fireAt
			if buf, ok := p.buffers[e.sessionID]; ok {
				delete(p.buffers, e.sessionID)
				p.due = append(p.due, buf)
			}
		}
		if len(p.due) > 0 {
			if p.precision == nn.TierF32 {
				applySessionUpdateBatch32(p.model, p.store, p.due, p.batchSc32)
			} else {
				applySessionUpdateBatch(p.model, p.store, p.due, p.batchSc)
			}
			p.UpdatesRun += int64(len(p.due))
		}
	}
}

// OnSessionStart records the context of a new session and arms its
// finalisation timer.
func (p *StreamProcessor) OnSessionStart(sessionID string, userID int, ts int64, cat []int) {
	p.Advance(ts)
	p.buffers[sessionID] = &sessionBuffer{
		userID: userID,
		start:  ts,
		cat:    append([]int(nil), cat...),
	}
	heap.Push(&p.timers, timerEntry{
		fireAt:    ts + p.model.Schema.SessionLength + p.Epsilon,
		sessionID: sessionID,
	})
}

// OnAccess records an access event for an in-flight session. Events for
// unknown or already-finalised sessions are dropped (matching at-most-once
// buffering semantics).
func (p *StreamProcessor) OnAccess(sessionID string, ts int64) {
	p.Advance(ts)
	if buf, ok := p.buffers[sessionID]; ok {
		buf.accessed = true
	}
}

// finalize joins the session's events and runs the hidden update.
func (p *StreamProcessor) finalize(sessionID string) {
	buf, ok := p.buffers[sessionID]
	if !ok {
		return
	}
	delete(p.buffers, sessionID)
	if p.precision == nn.TierF32 {
		applySessionUpdate32(p.model, p.store, buf, p.scratch32)
	} else {
		applySessionUpdate(p.model, p.store, buf, p.scratch)
	}
	p.UpdatesRun++
}

// applySessionUpdate is the finalisation step shared by the sequential and
// parallel processors: read the user's hidden state, fold the session in
// with RNNupdate, write the new state back. Model inference is read-only
// and the Store implementations are concurrency-safe, so this is safe to
// run from many goroutines as long as no two run for the same user at once
// and each caller owns its scratch.
func applySessionUpdate(model *core.Model, store Store, buf *sessionBuffer, sc *updateScratch) {
	key := hiddenKey(buf.userID)
	var lastTS int64
	decoded := false
	if raw, found := store.Get(key); found {
		// DecodeHiddenInto fails on a dimension mismatch, which doubles as
		// the stale-state check (len == StateSize) of the scratch-free path.
		lastTS, decoded = DecodeHiddenInto(raw, sc.state)
	}
	if !decoded {
		sc.state.Zero() // h_0 (§6.1)
		lastTS = 0
	}
	var dt int64
	if lastTS != 0 {
		dt = buf.start - lastTS
	}
	in := model.BuildUpdateInput(buf.start, buf.cat, buf.accessed, dt, sc.in)
	model.UpdateStateInto(sc.next, sc.state, in, sc.cell)
	sc.enc = EncodeHiddenInto(sc.enc, sc.next, buf.start)
	store.Put(key, sc.enc)
}

// Flush fires all outstanding timers regardless of the clock (end of
// replay).
func (p *StreamProcessor) Flush() {
	if len(p.timers) == 0 {
		return
	}
	last := p.timers[0].fireAt
	for _, e := range p.timers {
		if e.fireAt > last {
			last = e.fireAt
		}
	}
	p.Advance(last)
}

// Pending returns the number of in-flight sessions.
func (p *StreamProcessor) Pending() int { return len(p.buffers) }
