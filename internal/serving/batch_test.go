package serving

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// replayScalar replays evs through a sequential per-session processor and
// returns its store — the reference every batched variant must match byte
// for byte.
func replayScalar(m *core.Model, evs []replayEvent) *KVStore {
	store := NewKVStore()
	p := NewStreamProcessor(m, store)
	for _, e := range evs {
		p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			p.OnAccess(e.sid, e.ts+30)
		}
	}
	p.Flush()
	return store
}

func requireSameStates(t *testing.T, name string, users int, want *KVStore, got Store) {
	t.Helper()
	for u := 0; u < users; u++ {
		a, okA := want.Get(hiddenKey(u))
		b, okB := got.Get(hiddenKey(u))
		if !okA || !okB {
			t.Fatalf("%s: user %d: missing state (scalar %v, batched %v)", name, u, okA, okB)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: user %d: batched hidden state differs from scalar", name, u)
		}
	}
}

// TestBatchedFinalisationMatchesSequential is the batched analogue of
// TestParallelMatchesSequential: the sequential batched drain and the
// parallel batched worker drain must both store byte-identical hidden
// states to the per-session path, across batch sizes around the group and
// tile edges.
func TestBatchedFinalisationMatchesSequential(t *testing.T) {
	m := testModel()
	const users = 24
	evs := syntheticLog(users, 6)
	want := replayScalar(m, evs)

	for _, batch := range []int{2, 7, 16, 64} {
		store := NewKVStore()
		p := NewStreamProcessor(m, store)
		p.SetInferBatch(batch)
		for _, e := range evs {
			p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
			if e.access {
				p.OnAccess(e.sid, e.ts+30)
			}
		}
		p.Flush()
		if p.UpdatesRun != int64(len(evs)) {
			t.Fatalf("batch %d: UpdatesRun %d, want %d", batch, p.UpdatesRun, len(evs))
		}
		if st := store.Stats(); st.Gets != int64(len(evs)) || st.Puts != int64(len(evs)) {
			t.Fatalf("batch %d: store traffic %d gets / %d puts, want %d each", batch, st.Gets, st.Puts, len(evs))
		}
		requireSameStates(t, fmt.Sprintf("sequential batch %d", batch), users, want, store)

		parStore := NewShardedKVStore(16)
		par := NewParallelStreamProcessorBatch(m, parStore, 4, batch)
		for _, e := range evs {
			par.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
			if e.access {
				par.OnAccess(e.sid, e.ts+30)
			}
		}
		par.Close()
		if got := par.UpdatesRun(); got != int64(len(evs)) {
			t.Fatalf("parallel batch %d: UpdatesRun %d, want %d", batch, got, len(evs))
		}
		requireSameStates(t, fmt.Sprintf("parallel batch %d", batch), users, want, parStore)
	}
}

// TestBatchedWavePartition forces many sessions of the same users into one
// drain (all timers fire in a single Flush), so correctness depends on the
// wave partition applying each user's sessions in order.
func TestBatchedWavePartition(t *testing.T) {
	m := testModel()
	const users = 5
	const rounds = 9
	var evs []replayEvent
	start := synth.DefaultStart
	for r := 0; r < rounds; r++ {
		for u := 0; u < users; u++ {
			// Seconds apart: every session of every user is due in the same
			// drain at Flush time.
			evs = append(evs, replayEvent{
				sid:    fmt.Sprintf("u%d-s%d", u, r),
				userID: u,
				ts:     start + int64(r*users+u),
				cat:    []int{(u + r) % 4, r % 3},
				access: r%2 == 0,
			})
		}
	}
	want := replayScalar(m, evs)

	store := NewKVStore()
	p := NewStreamProcessor(m, store)
	p.SetInferBatch(users * rounds) // one group holds every session
	for _, e := range evs {
		p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			p.OnAccess(e.sid, e.ts+1)
		}
	}
	p.Flush()
	requireSameStates(t, "wave partition", users, want, store)
}

// TestBatchedStackedModel runs the equivalence over a 2-layer stacked GRU,
// exercising the stacked cell's batched gather/scatter path end to end.
func TestBatchedStackedModel(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 8
	cfg.MLPHidden = 8
	cfg.Layers = 2
	m := core.New(synth.MobileTabSchema(), cfg)
	if !m.SupportsBatchUpdate() {
		t.Fatalf("stacked GRU model must support batch update")
	}
	const users = 12
	evs := syntheticLog(users, 4)
	want := replayScalar(m, evs)

	store := NewKVStore()
	p := NewStreamProcessor(m, store)
	p.SetInferBatch(8)
	for _, e := range evs {
		p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			p.OnAccess(e.sid, e.ts+30)
		}
	}
	p.Flush()
	requireSameStates(t, "stacked", users, want, store)
}

// TestParallelBatchedConcurrent drives a batched worker pool from many
// goroutines at once — under -race this is the batched finaliser's
// concurrency proof (the serving race step in CI runs it).
func TestParallelBatchedConcurrent(t *testing.T) {
	m := testModel()
	store := NewShardedKVStore(16)
	p := NewParallelStreamProcessorBatch(m, store, 4, 8)

	const users = 12
	const rounds = 8
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			start := synth.DefaultStart
			for r := 0; r < rounds; r++ {
				ts := start + int64(r)*7200
				sid := fmt.Sprintf("u%d-s%d", u, r)
				p.OnSessionStart(sid, u, ts, []int{u % 4, r % 3})
				if r%2 == 0 {
					p.OnAccess(sid, ts+30)
				}
			}
		}(u)
	}
	wg.Wait()
	p.Close()

	if got := p.UpdatesRun(); got != users*rounds {
		t.Fatalf("UpdatesRun: %d, want %d", got, users*rounds)
	}
	if st := store.Stats(); st.Keys != users {
		t.Fatalf("stored keys: %d, want %d", st.Keys, users)
	}
}

// TestBatchedSyncVisibility checks Advance+Sync read-your-writes holds
// with the batched worker drain.
func TestBatchedSyncVisibility(t *testing.T) {
	m := testModel()
	store := NewShardedKVStore(4)
	p := NewParallelStreamProcessorBatch(m, store, 2, 16)
	defer p.Close()

	start := synth.DefaultStart
	for i := 0; i < 6; i++ {
		p.OnSessionStart(fmt.Sprintf("s%d", i), 40+i, start+int64(i), []int{1, 2})
	}
	p.Advance(start + m.Schema.SessionLength + p.Epsilon + 10)
	p.Sync()
	for i := 0; i < 6; i++ {
		if _, ok := store.Get(hiddenKey(40 + i)); !ok {
			t.Fatalf("user %d state missing after Advance+Sync", 40+i)
		}
	}
}
