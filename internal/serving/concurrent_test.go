package serving

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/synth"
)

func TestShardedKVStoreBasics(t *testing.T) {
	s := NewShardedKVStore(16)
	if _, ok := s.Get("missing"); ok {
		t.Fatalf("missing key must miss")
	}
	s.Put("a", []byte{1, 2, 3})
	v, ok := s.Get("a")
	if !ok || len(v) != 3 || v[0] != 1 {
		t.Fatalf("Get after Put: %v %v", v, ok)
	}
	// Returned slice must be a copy.
	v[0] = 99
	v2, _ := s.Get("a")
	if v2[0] != 1 {
		t.Fatalf("Get must return a copy")
	}
	// Stored slice must be a copy too.
	buf := []byte{7, 8}
	s.Put("b", buf)
	buf[0] = 9
	vb, _ := s.Get("b")
	if vb[0] != 7 {
		t.Fatalf("Put must copy the value")
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatalf("Delete failed")
	}
	st := s.Stats()
	if st.Gets != 5 || st.Puts != 2 || st.Misses != 2 || st.Keys != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesStored != int64(len("b")+2) {
		t.Fatalf("BytesStored: %d", st.BytesStored)
	}
}

func TestShardedKVStoreShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := NewShardedKVStore(tc.in).NumShards(); got != tc.want {
			t.Fatalf("NumShards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestShardedKVStoreConcurrent hammers one store from many goroutines with
// overlapping keys; run under -race this is the shard-locking proof.
func TestShardedKVStoreConcurrent(t *testing.T) {
	s := NewShardedKVStore(8)
	const goroutines = 16
	const opsPerG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(64))
				switch rng.Intn(4) {
				case 0:
					s.Put(key, []byte{byte(g), byte(i)})
				case 1:
					if v, ok := s.Get(key); ok && len(v) != 2 {
						t.Errorf("corrupt value %v", v)
					}
				case 2:
					s.Delete(key)
				default:
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts == 0 || st.Gets == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}

// replayEvent is one synthetic session for the equivalence replays.
type replayEvent struct {
	sid    string
	userID int
	ts     int64
	cat    []int
	access bool
}

// syntheticLog builds a deterministic interleaved session log: users×rounds
// sessions in global timestamp order with varying contexts and access
// patterns.
func syntheticLog(users, rounds int) []replayEvent {
	var evs []replayEvent
	start := synth.DefaultStart
	for r := 0; r < rounds; r++ {
		for u := 0; u < users; u++ {
			ts := start + int64(r)*7200 + int64(u)*11
			evs = append(evs, replayEvent{
				sid:    fmt.Sprintf("u%d-s%d", u, r),
				userID: u,
				ts:     ts,
				cat:    []int{(u + r) % 4, u % 3},
				access: (u+r)%3 == 0,
			})
		}
	}
	return evs
}

// TestParallelMatchesSequential replays the same synthetic log through the
// sequential processor (single-mutex store) and the parallel processor
// (sharded store, 8 workers) and requires byte-identical stored hidden
// states: per-user lanes keep each user's update order, and each user's
// state chain depends only on that user's sessions.
func TestParallelMatchesSequential(t *testing.T) {
	m := testModel()
	evs := syntheticLog(24, 6)

	seqStore := NewKVStore()
	seq := NewStreamProcessor(m, seqStore)
	for _, e := range evs {
		seq.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			seq.OnAccess(e.sid, e.ts+30)
		}
	}
	seq.Flush()

	parStore := NewShardedKVStore(16)
	par := NewParallelStreamProcessor(m, parStore, 8)
	for _, e := range evs {
		par.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
		if e.access {
			par.OnAccess(e.sid, e.ts+30)
		}
	}
	par.Close()

	if got, want := par.UpdatesRun(), seq.UpdatesRun; got != want {
		t.Fatalf("UpdatesRun: parallel %d vs sequential %d", got, want)
	}
	for u := 0; u < 24; u++ {
		a, okA := seqStore.Get(hiddenKey(u))
		b, okB := parStore.Get(hiddenKey(u))
		if !okA || !okB {
			t.Fatalf("user %d: missing state (seq %v, par %v)", u, okA, okB)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("user %d: parallel hidden state differs from sequential", u)
		}
	}
}

// TestParallelStreamProcessorConcurrent drives one processor from many
// goroutines at once (one goroutine per user, so per-user event order stays
// well defined) and checks every session is finalised exactly once.
func TestParallelStreamProcessorConcurrent(t *testing.T) {
	m := testModel()
	store := NewShardedKVStore(16)
	p := NewParallelStreamProcessor(m, store, 4)

	const users = 12
	const rounds = 8
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			start := synth.DefaultStart
			for r := 0; r < rounds; r++ {
				ts := start + int64(r)*7200
				sid := fmt.Sprintf("u%d-s%d", u, r)
				p.OnSessionStart(sid, u, ts, []int{u % 4, r % 3})
				if r%2 == 0 {
					p.OnAccess(sid, ts+30)
				}
			}
		}(u)
	}
	wg.Wait()
	p.Close()

	if got := p.UpdatesRun(); got != users*rounds {
		t.Fatalf("UpdatesRun: %d, want %d", got, users*rounds)
	}
	if p.Pending() != 0 {
		t.Fatalf("Pending after Close: %d", p.Pending())
	}
	st := store.Stats()
	if st.Keys != users {
		t.Fatalf("stored keys: %d, want %d", st.Keys, users)
	}
}

// TestParallelSyncVisibility checks Advance+Sync gives the sequential
// path's read-your-writes behaviour: after Sync, the finalised session's
// state is visible in the store.
func TestParallelSyncVisibility(t *testing.T) {
	m := testModel()
	store := NewShardedKVStore(4)
	p := NewParallelStreamProcessor(m, store, 2)
	defer p.Close()

	start := synth.DefaultStart
	p.OnSessionStart("s1", 7, start, []int{1, 2})
	p.OnAccess("s1", start+60)
	if _, ok := store.Get(hiddenKey(7)); ok {
		t.Fatalf("hidden must not exist before finalisation")
	}
	p.Advance(start + m.Schema.SessionLength + p.Epsilon + 1)
	p.Sync()
	raw, ok := store.Get(hiddenKey(7))
	if !ok {
		t.Fatalf("hidden state missing after Advance+Sync")
	}
	if h, ts, ok2 := DecodeHidden(raw); !ok2 || ts != start || len(h) != m.StateSize() {
		t.Fatalf("stored hidden malformed")
	}
}

// TestBatchPredictionMatchesSequential compares OnSessionStartBatch against
// per-request OnSessionStart calls on a warmed store.
func TestBatchPredictionMatchesSequential(t *testing.T) {
	m := testModel()
	store := NewShardedKVStore(8)

	// Warm hidden states for half the users (the rest exercise cold start).
	proc := NewStreamProcessor(m, store)
	start := synth.DefaultStart
	for u := 0; u < 10; u += 2 {
		proc.OnSessionStart(fmt.Sprintf("w%d", u), u, start, []int{u % 4, 0})
	}
	proc.Flush()

	svc := NewPredictionService(m, store, 0.5)
	var reqs []PredictRequest
	for u := 0; u < 10; u++ {
		reqs = append(reqs, PredictRequest{UserID: u, Ts: start + 9000, Cat: []int{u % 4, 1}})
	}
	want := make([]Decision, len(reqs))
	for i, r := range reqs {
		want[i] = svc.OnSessionStart(r.UserID, r.Ts, r.Cat)
	}
	for _, workers := range []int{1, 4, 8} {
		got := svc.OnSessionStartBatch(reqs, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d req %d: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
	if svc.Predictions.Load() != int64(len(reqs)*4) {
		t.Fatalf("Predictions counter: %d", svc.Predictions.Load())
	}
}

// TestStreamProcessorAcceptsShardedStore checks the sequential processor
// works unchanged against the sharded store (the Store interface seam).
func TestStreamProcessorAcceptsShardedStore(t *testing.T) {
	m := testModel()
	store := NewShardedKVStore(4)
	p := NewStreamProcessor(m, store)
	p.OnSessionStart("s", 3, synth.DefaultStart, []int{0, 1})
	p.Flush()
	if _, ok := store.Get(hiddenKey(3)); !ok {
		t.Fatalf("sequential processor must work with the sharded store")
	}
}
