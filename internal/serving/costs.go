package serving

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gbdt"
)

// CostParams calibrates the abstract serving-cost model. The absolute
// numbers stand in for production hardware; the *structure* — lookups
// dominate model compute by orders of magnitude — is what drives the §9
// conclusion and is preserved for any plausible calibration.
type CostParams struct {
	// LookupNanos is the cost of one key-value read including network and
	// store-side work (tens of microseconds in production).
	LookupNanos float64
	// MACNanos is the effective cost of one multiply-accumulate in the
	// served neural model (sub-ns with vectorised inference).
	MACNanos float64
	// TreeNodeNanos is the cost of one decision-tree node traversal
	// (pointer-chasing, cache-unfriendly).
	TreeNodeNanos float64
}

// DefaultCostParams returns a calibration in line with the paper's
// observations: model compute is microseconds, lookups are tens of
// microseconds, so feature serving dominates end-to-end cost.
func DefaultCostParams() CostParams {
	return CostParams{LookupNanos: 50_000, MACNanos: 0.1, TreeNodeNanos: 5}
}

// CostReport is the per-prediction serving cost comparison of §9.
type CostReport struct {
	// Lookups per prediction: the GBDT path reads one key per aggregation
	// feature group ((windows × subsets) counts + subsets elapsed ≈ 20 for
	// MobileTab); the RNN path reads exactly one hidden state.
	RNNLookupsPerPrediction  float64
	GBDTLookupsPerPrediction float64

	// Model compute per prediction.
	RNNPredictMACs    int
	RNNUpdateMACs     int // per session, off the critical path
	GBDTTreeNodes     int // traversal comparisons per prediction
	RNNModelNanos     float64
	GBDTModelNanos    float64
	ModelComputeRatio float64 // RNN / GBDT (paper: ≈9.5×)

	// End-to-end serving cost per prediction (lookups + model compute).
	RNNServingNanos  float64
	GBDTServingNanos float64
	ServingCostRatio float64 // GBDT / RNN (paper: ≈10× reduction)

	// Storage per user.
	RNNStateBytes        int
	AggKeysPerUser       float64
	AggStateBytesPerUser float64
}

// predictMACs counts multiply-accumulates in RNNpredict: the latent cross
// projection, W1 and W2.
func predictMACs(m *core.Model) int {
	h, p, w := m.HiddenDim(), m.PredictDim(), m.Cfg.MLPHidden
	macs := (h+p)*w + w // W1 + W2
	if m.Cfg.LatentCross {
		macs += p*h + h
	}
	return macs
}

// updateMACs counts multiply-accumulates in one GRU update (3 gates over
// input and hidden).
func updateMACs(m *core.Model) int {
	h, u := m.HiddenDim(), m.UpdateDim()
	gates := 3
	if m.Cfg.Cell == "lstm" {
		gates = 4
	} else if m.Cfg.Cell == "tanh" {
		gates = 1
	}
	return gates * h * (u + h)
}

// avgTreeDepthNodes estimates traversal comparisons per GBDT prediction:
// one path of length ≈ MaxDepth per tree.
func avgTreeDepthNodes(g *gbdt.Model) int {
	if len(g.Trees) == 0 {
		return 0
	}
	return len(g.Trees) * g.Config.MaxDepth
}

// CompareCosts builds the §9 report. sample supplies a few users whose
// replayed aggregation state calibrates the per-user storage footprint.
func CompareCosts(m *core.Model, g *gbdt.Model, sample *dataset.Dataset, params CostParams) CostReport {
	r := CostReport{}
	schema := sample.Schema
	subsets := 1 << len(schema.Cat)

	r.RNNLookupsPerPrediction = 1
	// One read per (window × subset) count group plus one per subset for
	// the elapsed features — the paper's "about 20 aggregation feature
	// lookups" for MobileTab's 4 subsets × 4 windows + 4.
	r.GBDTLookupsPerPrediction = float64(subsets*len(features.AggWindows) + subsets)

	r.RNNPredictMACs = predictMACs(m)
	r.RNNUpdateMACs = updateMACs(m)
	r.GBDTTreeNodes = avgTreeDepthNodes(g)

	r.RNNModelNanos = float64(r.RNNPredictMACs+r.RNNUpdateMACs) * params.MACNanos
	r.GBDTModelNanos = float64(r.GBDTTreeNodes) * params.TreeNodeNanos
	if r.GBDTModelNanos > 0 {
		r.ModelComputeRatio = r.RNNModelNanos / r.GBDTModelNanos
	}

	// End-to-end: predictions pay lookups + model compute. The RNN path
	// additionally pays one write-back per session in the stream
	// processor; count it as one more lookup-equivalent.
	r.RNNServingNanos = (r.RNNLookupsPerPrediction+1)*params.LookupNanos + r.RNNModelNanos
	r.GBDTServingNanos = r.GBDTLookupsPerPrediction*params.LookupNanos + r.GBDTModelNanos
	if r.RNNServingNanos > 0 {
		r.ServingCostRatio = r.GBDTServingNanos / r.RNNServingNanos
	}

	r.RNNStateBytes = HiddenValueBytes(m.HiddenDim())

	// Replay sample users through the aggregation engine to measure the
	// per-user key count and resident bytes the aggregation store needs.
	var keys, bytes float64
	n := 0
	for _, u := range sample.Users {
		if len(u.Sessions) == 0 {
			continue
		}
		agg := features.NewAggregator(schema)
		for _, s := range u.Sessions {
			agg.Observe(s.Timestamp, s.Cat, s.Access)
		}
		keys += float64(agg.KeyCount())
		bytes += float64(agg.StateBytes())
		n++
		if n >= 200 {
			break
		}
	}
	if n > 0 {
		r.AggKeysPerUser = keys / float64(n)
		r.AggStateBytesPerUser = bytes / float64(n)
	}
	return r
}
