package serving

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// f32 fast-tier finalisation: the same read→update→write pipeline as
// applySessionUpdate/applySessionUpdateBatch, threaded through the model's
// float32 fused GRU kernels. The wire format is shared with the f64 tier
// (the store is float32 already), so switching tiers never rewrites the
// store — an f64-written state decodes losslessly into the f32 path and
// vice versa. Within the f32 tier every path (scalar, batched, parallel)
// stores bit-identical states, exactly like the f64 tier; across tiers the
// agreement is bounded-error, pinned by TestF32TierBoundedErrorVsF64.

// updateScratch32 is updateScratch for the f32 tier.
type updateScratch32 struct {
	state, next, in, cell tensor.Vector32
	enc                   []byte
}

func newUpdateScratch32(m *core.Model) *updateScratch32 {
	return &updateScratch32{
		state: tensor.NewVector32(m.StateSize()),
		next:  tensor.NewVector32(m.StateSize()),
		in:    tensor.NewVector32(m.UpdateDim32()),
		cell:  tensor.NewVector32(m.UpdateScratchSize32()),
	}
}

// applySessionUpdate32 is applySessionUpdate on the f32 tier: same store
// traffic (one Get, one Put), same h_0 and Δt semantics, float32 compute.
func applySessionUpdate32(model *core.Model, store Store, buf *sessionBuffer, sc *updateScratch32) {
	key := hiddenKey(buf.userID)
	var lastTS int64
	decoded := false
	if raw, found := store.Get(key); found {
		lastTS, decoded = DecodeHiddenInto32(raw, sc.state)
	}
	if !decoded {
		sc.state.Zero() // h_0 (§6.1)
		lastTS = 0
	}
	var dt int64
	if lastTS != 0 {
		dt = buf.start - lastTS
	}
	in := model.BuildUpdateInput32(buf.start, buf.cat, buf.accessed, dt, sc.in)
	model.UpdateStateInto32(sc.next, sc.state, in, sc.cell)
	sc.enc = EncodeHiddenInto32(sc.enc, sc.next, buf.start)
	store.Put(key, sc.enc)
}

// batchScratch32 is batchScratch for the f32 tier. The input panel is
// UpdateDim32 wide (padded to the packed-kernel reduction width).
type batchScratch32 struct {
	scalar *updateScratch32 // singleton waves take the scalar path
	arena  *tensor.Arena32
	enc    []byte
	seen   map[int]int
	wave   []int
	rows   []int
	keys   []string
}

func newBatchScratch32(m *core.Model, maxBatch int) *batchScratch32 {
	panel := maxBatch * (2*m.StateSize() + m.UpdateDim32())
	return &batchScratch32{
		scalar: newUpdateScratch32(m),
		arena:  tensor.NewArena32(panel + m.BatchUpdateScratchSize32(maxBatch)),
		seen:   make(map[int]int),
		keys:   make([]string, 0, maxBatch),
	}
}

// applySessionUpdateBatch32 is applySessionUpdateBatch on the f32 tier:
// identical wave partitioning (per-user step depth, waves sequential),
// float32 panels and cell. Bit-identity with the scalar f32 path follows
// from the cell's row contract plus the shared per-row input routing.
func applySessionUpdateBatch32(model *core.Model, store Store, bufs []*sessionBuffer, bs *batchScratch32) {
	if len(bufs) == 1 {
		applySessionUpdate32(model, store, bufs[0], bs.scalar)
		return
	}
	clear(bs.seen)
	bs.wave = bs.wave[:0]
	maxWave := 0
	for _, b := range bufs {
		w := bs.seen[b.userID]
		bs.seen[b.userID] = w + 1
		bs.wave = append(bs.wave, w)
		if w > maxWave {
			maxWave = w
		}
	}
	for w := 0; w <= maxWave; w++ {
		bs.rows = bs.rows[:0]
		for i, bw := range bs.wave {
			if bw == w {
				bs.rows = append(bs.rows, i)
			}
		}
		bs.applyWave(model, store, bufs)
	}
}

// applyWave is batchScratch.applyWave on the f32 tier: gather, one batched
// f32 cell advance, scatter. Get/Put counts per session match the scalar
// path exactly.
func (bs *batchScratch32) applyWave(model *core.Model, store Store, bufs []*sessionBuffer) {
	if len(bs.rows) == 1 {
		applySessionUpdate32(model, store, bufs[bs.rows[0]], bs.scalar)
		return
	}
	w := len(bs.rows)
	bs.arena.Reset()
	states := bs.arena.Matrix(w, model.StateSize())
	xs := bs.arena.Matrix(w, model.UpdateDim32())
	next := bs.arena.Matrix(w, model.StateSize())
	bs.keys = bs.keys[:0]
	for r, bi := range bs.rows {
		buf := bufs[bi]
		bs.keys = append(bs.keys, hiddenKey(buf.userID))
		row := states.Row(r)
		var lastTS int64
		decoded := false
		if raw, found := store.Get(bs.keys[r]); found {
			lastTS, decoded = DecodeHiddenInto32(raw, row)
		}
		if !decoded {
			row.Zero() // h_0 (§6.1)
			lastTS = 0
		}
		var dt int64
		if lastTS != 0 {
			dt = buf.start - lastTS
		}
		model.BuildUpdateInput32(buf.start, buf.cat, buf.accessed, dt, xs.Row(r))
	}
	model.UpdateStatesInto32(next, states, xs, bs.arena)
	for r, bi := range bs.rows {
		buf := bufs[bi]
		bs.enc = EncodeHiddenInto32(bs.enc, next.Row(r), buf.start)
		store.Put(bs.keys[r], bs.enc)
	}
}
