package serving

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func TestQuantizedCodecRoundTrip(t *testing.T) {
	h := tensor.Vector{0, 0.5, -0.5, 1, -1, 0.123, -0.987}
	buf := EncodeHiddenQuantized(h, 42)
	if len(buf) != QuantizedValueBytes(len(h)) {
		t.Fatalf("size: %d", len(buf))
	}
	got, ts, ok := DecodeHiddenQuantized(buf)
	if !ok || ts != 42 || len(got) != len(h) {
		t.Fatalf("decode failed")
	}
	for i := range h {
		if math.Abs(got[i]-h[i]) > 1.0/127+1e-9 {
			t.Fatalf("quantization error too large at %d: %v vs %v", i, got[i], h[i])
		}
	}
}

func TestQuantizedCodecClamps(t *testing.T) {
	h := tensor.Vector{5, -5}
	got, _, _ := DecodeHiddenQuantized(EncodeHiddenQuantized(h, 1))
	if got[0] != 1 || got[1] != -1 {
		t.Fatalf("out-of-range values must clamp to ±1: %v", got)
	}
}

func TestQuantizedCodecRejectsShort(t *testing.T) {
	if _, _, ok := DecodeHiddenQuantized([]byte{1}); ok {
		t.Fatalf("short buffer must fail")
	}
}

func TestQuantizedSizeIsQuarter(t *testing.T) {
	// §9: single bytes instead of floats — a 4× vector-size reduction.
	full := HiddenValueBytes(128) - 8
	quant := QuantizedValueBytes(128) - 8
	if full != 4*quant {
		t.Fatalf("quantized vector should be 4x smaller: %d vs %d", full, quant)
	}
}

// Property: the round-trip is idempotent (quantizing twice changes
// nothing) and error-bounded.
func TestQuantizeRoundTripProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		h := tensor.NewVector(1 + rng.Intn(64))
		rng.FillUniform(h, -1, 1)
		q1 := QuantizeRoundTrip(h)
		q2 := QuantizeRoundTrip(q1)
		for i := range q1 {
			if q1[i] != q2[i] {
				return false
			}
			if math.Abs(q1[i]-h[i]) > 1.0/127+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedEvaluationNearLossless(t *testing.T) {
	// End-to-end: int8 hidden states must barely change a trained model's
	// PR-AUC (the §9 quantization claim).
	mtCfg := synth.DefaultMobileTab()
	mtCfg.Users = 120
	data := synth.GenerateMobileTab(mtCfg)
	split := dataset.SplitUsers(data, 0.3, 17)

	cfg := core.DefaultConfig()
	cfg.HiddenDim = 16
	cfg.MLPHidden = 16
	m := core.New(data.Schema, cfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchUsers = 4
	tc.LR = 2e-3
	core.NewTrainer(m, tc).Train(split.Train)

	cutoff := data.CutoffForLastDays(7)
	s32, l32 := m.EvaluateSessions(split.Test, cutoff)
	s8, l8 := m.EvaluateSessionsTransformed(split.Test, cutoff, QuantizeRoundTrip)
	if len(s32) != len(s8) {
		t.Fatalf("prediction counts differ")
	}
	a32 := metrics.PRAUC(s32, l32)
	a8 := metrics.PRAUC(s8, l8)
	if math.Abs(a32-a8) > 0.02 {
		t.Fatalf("quantization changed PR-AUC too much: %v vs %v", a32, a8)
	}
	// Individual scores move only slightly.
	var maxDiff float64
	for i := range s32 {
		if d := math.Abs(s32[i] - s8[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.1 {
		t.Fatalf("max per-score quantization drift: %v", maxDiff)
	}
	_ = l8
}
