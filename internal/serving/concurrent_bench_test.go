package serving

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// benchModel is an untrained 64-dim model (the EXPERIMENTS.md headline
// shape): throughput does not depend on the weights, and a realistic
// per-update cost is what the worker pool amortises. The paper's 128-dim
// production shape allocates enough per update that on small (2-core)
// machines GC assist eats the parallel win; 64 keeps the benchmark
// meaningful everywhere.
func benchModel() *core.Model {
	cfg := core.DefaultConfig()
	cfg.HiddenDim = 64
	cfg.MLPHidden = 64
	return core.New(synth.MobileTabSchema(), cfg)
}

// BenchmarkShardedKVStore compares the single-mutex store against the
// sharded store under a concurrent 80/20 read/write workload (the serving
// tier's mix: every prediction is a read, every finalisation a write).
func BenchmarkShardedKVStore(b *testing.B) {
	value := make([]byte, HiddenValueBytes(128))
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("h:%d", i)
	}
	run := func(b *testing.B, store Store) {
		for _, k := range keys {
			store.Put(k, value)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keys[i%len(keys)]
				if i%5 == 0 {
					store.Put(k, value)
				} else {
					store.Get(k)
				}
				i++
			}
		})
	}
	b.Run("mutex", func(b *testing.B) { run(b, NewKVStore()) })
	b.Run("sharded-16", func(b *testing.B) { run(b, NewShardedKVStore(16)) })
	b.Run("sharded-64", func(b *testing.B) { run(b, NewShardedKVStore(64)) })
}

// BenchmarkParallelStreamUpdate measures session-finalisation throughput:
// one iteration replays a fixed synthetic log and flushes, so the timed
// region is dominated by the GRU updates. The sequential processor is the
// baseline; the parallel processor runs at 1/4/8 worker lanes.
func BenchmarkParallelStreamUpdate(b *testing.B) {
	m := benchModel()
	evs := syntheticLog(64, 4)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := NewStreamProcessor(m, NewKVStore())
			for _, e := range evs {
				p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
				if e.access {
					p.OnAccess(e.sid, e.ts+30)
				}
			}
			p.Flush()
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := NewParallelStreamProcessor(m, NewShardedKVStore(16), workers)
				for _, e := range evs {
					p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
					if e.access {
						p.OnAccess(e.sid, e.ts+30)
					}
				}
				p.Close()
			}
		})
	}
	// Batched finalisation: the GEMM path amortises weight traffic across
	// each drained group (replay pattern leaves a full backlog at Flush).
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("sequential-batch-%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := NewStreamProcessor(m, NewKVStore())
				p.SetInferBatch(batch)
				for _, e := range evs {
					p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
					if e.access {
						p.OnAccess(e.sid, e.ts+30)
					}
				}
				p.Flush()
			}
		})
	}
	for _, workers := range []int{4} {
		b.Run(fmt.Sprintf("workers-%d-batch-32", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := NewParallelStreamProcessorBatch(m, NewShardedKVStore(16), workers, 32)
				for _, e := range evs {
					p.OnSessionStart(e.sid, e.userID, e.ts, e.cat)
					if e.access {
						p.OnAccess(e.sid, e.ts+30)
					}
				}
				p.Close()
			}
		})
	}
}

// BenchmarkBatchFinalise isolates the finalisation kernel from the replay
// machinery (timers, heaps, buffer maps, processor construction): a warmed
// store and a fixed group of due sessions, measured through the scalar
// per-session path vs the batched GEMM path at several batch sizes and
// hidden dims. This is the apples-to-apples number for the GEMM win; the
// replay benchmarks above include ingest overhead and per-iteration
// processor construction.
func BenchmarkBatchFinalise(b *testing.B) {
	for _, d := range []int{32, 64, 128} {
		cfg := core.DefaultConfig()
		cfg.HiddenDim = d
		cfg.MLPHidden = 64
		m := core.New(synth.MobileTabSchema(), cfg)
		const users = 64
		store := NewKVStore()
		// Warm every user's state so the benchmark measures decode+GRU+encode,
		// not cold starts.
		warm := NewStreamProcessor(m, store)
		for u := 0; u < users; u++ {
			warm.OnSessionStart(fmt.Sprintf("w%d", u), u, synth.DefaultStart+int64(u), []int{u % 4, u % 3})
		}
		warm.Flush()
		bufs := make([]*sessionBuffer, users)
		for u := 0; u < users; u++ {
			bufs[u] = &sessionBuffer{
				userID: u, start: synth.DefaultStart + 7200 + int64(u),
				cat: []int{u % 4, u % 3}, accessed: u%3 == 0,
			}
		}
		b.Run(fmt.Sprintf("d%d/scalar", d), func(b *testing.B) {
			sc := newUpdateScratch(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, buf := range bufs {
					applySessionUpdate(m, store, buf, sc)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(bufs)), "ns/session")
		})
		for _, batch := range []int{8, 32, 64} {
			b.Run(fmt.Sprintf("d%d/batch-%d", d, batch), func(b *testing.B) {
				bs := newBatchScratch(m, batch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for lo := 0; lo < len(bufs); lo += batch {
						hi := min(lo+batch, len(bufs))
						applySessionUpdateBatch(m, store, bufs[lo:hi], bs)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(bufs)), "ns/session")
			})
		}
	}
}

// BenchmarkBatchPrediction measures session-startup throughput at 1/4/8
// fan-out goroutines over a warmed store.
func BenchmarkBatchPrediction(b *testing.B) {
	m := benchModel()
	store := NewShardedKVStore(16)
	proc := NewStreamProcessor(m, store)
	const users = 256
	var reqs []PredictRequest
	for u := 0; u < users; u++ {
		ts := int64(1564642800 + u)
		proc.OnSessionStart(fmt.Sprintf("w%d", u), u, ts, []int{u % 4, u % 3})
		reqs = append(reqs, PredictRequest{UserID: u, Ts: ts + 9000, Cat: []int{u % 4, 1}})
	}
	proc.Flush()
	svc := NewPredictionService(m, store, 0.5)

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svc.OnSessionStartBatch(reqs, workers)
			}
		})
	}
}

// BenchmarkSequentialLoop pins the per-request baseline OnSessionStartBatch
// is compared against.
func BenchmarkSequentialLoop(b *testing.B) {
	m := benchModel()
	store := NewShardedKVStore(16)
	svc := NewPredictionService(m, store, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.OnSessionStart(i%256, int64(1564642800+i), []int{i % 4, 1})
	}
}
