// Package serving simulates the production deployment of §9: a Redis-like
// key-value store holding one hidden state per user, a Kafka-like stream
// processor that joins session context and access events and runs the GRU
// update after the session window closes, a prediction service invoked at
// session startup, and a cost model that reproduces the paper's serving
// cost comparison (≈20 aggregation lookups per prediction vs one 512-byte
// hidden-state read; ≈9.5× model compute for the RNN; ≈10× net serving cost
// reduction).
package serving

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/tensor"
)

// KVStore is an in-memory key-value store with the access accounting the
// cost comparison needs. It stands in for the "real-time data store similar
// to Redis" of §9.
type KVStore struct {
	mu   sync.Mutex
	data map[string][]byte

	gets, puts, misses  int64
	bytesRead, bytesPut int64
	bytesStored         int64
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{data: make(map[string][]byte)}
}

// Get returns the stored value (nil, false on miss). Every call is counted.
func (s *KVStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.data[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.bytesRead += int64(len(v))
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stores a copy of value under key.
func (s *KVStore) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.bytesPut += int64(len(value))
	v := make([]byte, len(value))
	copy(v, value)
	if old, ok := s.data[key]; ok {
		s.bytesStored -= int64(len(key) + len(old))
	}
	s.bytesStored += int64(len(key) + len(v))
	s.data[key] = v
}

// Delete removes a key.
func (s *KVStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.data[key]; ok {
		s.bytesStored -= int64(len(key) + len(old))
		delete(s.data, key)
	}
}

// Keys snapshots the resident keyset (unordered).
func (s *KVStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}

// Stats is a snapshot of the store's access counters.
type Stats struct {
	Keys        int
	Gets        int64
	Puts        int64
	Misses      int64
	BytesRead   int64
	BytesPut    int64
	BytesStored int64
	// WALSeq/SnapSeq are populated only by the durable statestore: the
	// newest committed tail sequence number and the position of the last
	// completed snapshot. A follower's applied position lagging its
	// primary's WALSeq is the replication lag.
	WALSeq  int64
	SnapSeq int64
}

// Stats returns the current counters and resident footprint. BytesStored
// is maintained incrementally by Put/Delete — the old full-map scan under
// the mutex did not scale to million-key populations.
func (s *KVStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Keys: len(s.data), Gets: s.gets, Puts: s.puts, Misses: s.misses,
		BytesRead: s.bytesRead, BytesPut: s.bytesPut, BytesStored: s.bytesStored,
	}
}

// ---- Hidden-state codec ----
//
// Hidden states are stored as float32, matching the paper's 512-byte
// footprint for a 128-dimensional vector, together with the timestamp of
// the session that produced them (needed for T(t−t_k) at prediction time).

// EncodeHidden serialises (hidden, lastTS) for storage.
func EncodeHidden(h tensor.Vector, lastTS int64) []byte {
	return EncodeHiddenInto(nil, h, lastTS)
}

// EncodeHiddenInto is EncodeHidden into a reusable buffer: it reallocates
// only when dst is too small and returns the encoded slice (the serving
// hot path calls this once per finalisation; Put copies, so the buffer can
// be reused immediately).
func EncodeHiddenInto(dst []byte, h tensor.Vector, lastTS int64) []byte {
	need := 8 + 4*len(h)
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	buf := dst[:need]
	binary.LittleEndian.PutUint64(buf, uint64(lastTS))
	for i, v := range h {
		binary.LittleEndian.PutUint32(buf[8+4*i:], math.Float32bits(float32(v)))
	}
	return buf
}

// DecodeHidden reverses EncodeHidden.
func DecodeHidden(buf []byte) (h tensor.Vector, lastTS int64, ok bool) {
	if len(buf) < 8 || (len(buf)-8)%4 != 0 {
		return nil, 0, false
	}
	// h is sized to match, so DecodeHiddenInto cannot fail here.
	h = tensor.NewVector((len(buf) - 8) / 4)
	lastTS, _ = DecodeHiddenInto(buf, h)
	return h, lastTS, true
}

// DecodeHiddenInto decodes into a caller-owned vector, failing when the
// encoded dimension does not match len(h) (which doubles as the
// state-size check the processors need).
func DecodeHiddenInto(buf []byte, h tensor.Vector) (lastTS int64, ok bool) {
	if len(buf) < 8 || (len(buf)-8)%4 != 0 || (len(buf)-8)/4 != len(h) {
		return 0, false
	}
	lastTS = int64(binary.LittleEndian.Uint64(buf))
	for i := range h {
		h[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[8+4*i:])))
	}
	return lastTS, true
}

// HiddenValueBytes returns the stored size of one hidden state of dimension
// d (512 bytes of vector at d=128, plus the 8-byte timestamp).
func HiddenValueBytes(d int) int { return 8 + 4*d }

// ---- f32-tier hidden-state codec ----
//
// The wire format above is already float32 per dimension, so the f32
// serving tier shares it byte for byte: EncodeHiddenInto32 is a straight
// bit copy (no rounding — the state is float32 end to end), and a state
// written by either tier decodes into the other. f64-written states widen
// exactly into the f32 tier's decode; the only cross-tier difference is
// which arithmetic produced the bits, which the bounded-error equivalence
// tests cover.

// EncodeHiddenInto32 is EncodeHiddenInto for the f32 tier: identical wire
// bytes, no per-dimension rounding step.
func EncodeHiddenInto32(dst []byte, h tensor.Vector32, lastTS int64) []byte {
	need := 8 + 4*len(h)
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	buf := dst[:need]
	binary.LittleEndian.PutUint64(buf, uint64(lastTS))
	for i, v := range h {
		binary.LittleEndian.PutUint32(buf[8+4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeHiddenInto32 is DecodeHiddenInto for the f32 tier: the same length
// checks (doubling as the state-size check), a straight bit copy out.
func DecodeHiddenInto32(buf []byte, h tensor.Vector32) (lastTS int64, ok bool) {
	if len(buf) < 8 || (len(buf)-8)%4 != 0 || (len(buf)-8)/4 != len(h) {
		return 0, false
	}
	lastTS = int64(binary.LittleEndian.Uint64(buf))
	for i := range h {
		h[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return lastTS, true
}

// ---- Quantized hidden-state codec (§9) ----
//
// The paper notes that neural-network quantization can store single bytes
// instead of floats per dimension. GRU hidden values are convex
// combinations of tanh outputs, so they live in (−1, 1) and a fixed-scale
// int8 code loses at most 1/254 per dimension.

// QuantizeSample maps one hidden value to its fixed-scale int8 code; it is
// the single source of the quantization arithmetic, shared with the
// statestore's int8 tier so the two can never drift bit-wise.
func QuantizeSample(v float64) int8 { return int8(quantClamp(v) * 127) }

// DequantizeSample reverses QuantizeSample.
func DequantizeSample(b int8) float64 { return float64(b) / 127 }

// EncodeHiddenQuantized serialises (hidden, lastTS) at one byte per
// dimension.
func EncodeHiddenQuantized(h tensor.Vector, lastTS int64) []byte {
	buf := make([]byte, 8+len(h))
	binary.LittleEndian.PutUint64(buf, uint64(lastTS))
	for i, v := range h {
		buf[8+i] = byte(QuantizeSample(v))
	}
	return buf
}

// DecodeHiddenQuantized reverses EncodeHiddenQuantized.
func DecodeHiddenQuantized(buf []byte) (h tensor.Vector, lastTS int64, ok bool) {
	if len(buf) < 8 {
		return nil, 0, false
	}
	lastTS = int64(binary.LittleEndian.Uint64(buf))
	h = tensor.NewVector(len(buf) - 8)
	for i := range h {
		h[i] = DequantizeSample(int8(buf[8+i]))
	}
	return h, lastTS, true
}

// QuantizedValueBytes returns the stored size of a quantized state of
// dimension d (136 bytes at d=128 — the 4× shrink §9 describes).
func QuantizedValueBytes(d int) int { return 8 + d }

// QuantizeRoundTrip returns the hidden vector as the serving tier would see
// it after an int8 store/load cycle. Use with
// core.Model.EvaluateSessionsTransformed to measure the quality impact.
func QuantizeRoundTrip(h tensor.Vector) tensor.Vector {
	out := tensor.NewVector(len(h))
	for i, v := range h {
		out[i] = DequantizeSample(QuantizeSample(v))
	}
	return out
}

func quantClamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}
