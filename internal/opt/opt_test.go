package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic builds a single-parameter model with loss 0.5*(w - target)².
func quadratic(n int, init float64) (nn.Params, func() float64, func()) {
	p := nn.NewVectorParam("w", n)
	p.Value.Fill(init)
	target := 3.0
	params := nn.Params{p}
	loss := func() float64 {
		var s float64
		for _, w := range p.Value {
			s += 0.5 * (w - target) * (w - target)
		}
		return s
	}
	backward := func() {
		params.ZeroGrad()
		for i, w := range p.Value {
			p.Grad[i] = w - target
		}
	}
	return params, loss, backward
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params, loss, backward := quadratic(5, -10)
	adam := NewAdam(params, 0.1)
	for i := 0; i < 2000; i++ {
		backward()
		adam.Step()
	}
	if l := loss(); l > 1e-6 {
		t.Fatalf("Adam failed to converge: loss %v", l)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	params, loss, backward := quadratic(5, 10)
	sgd := NewSGD(params, 0.5, 0, 0)
	for i := 0; i < 200; i++ {
		backward()
		sgd.Step()
	}
	if l := loss(); l > 1e-9 {
		t.Fatalf("SGD failed to converge: loss %v", l)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	params, loss, backward := quadratic(3, 10)
	sgd := NewSGD(params, 0.05, 0.9, 0)
	for i := 0; i < 500; i++ {
		backward()
		sgd.Step()
	}
	if l := loss(); l > 1e-6 {
		t.Fatalf("SGD+momentum failed to converge: loss %v", l)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := nn.NewVectorParam("w", 1)
	p.Value[0] = 1
	sgd := NewSGD(nn.Params{p}, 0.1, 0, 0.5)
	// Zero loss gradient: only decay acts.
	for i := 0; i < 10; i++ {
		p.Grad[0] = 0
		sgd.Step()
	}
	want := math.Pow(1-0.1*0.5, 10)
	if math.Abs(p.Value[0]-want) > 1e-12 {
		t.Fatalf("weight decay: got %v, want %v", p.Value[0], want)
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr regardless of the
	// gradient scale (for a constant gradient).
	for _, g := range []float64{1e-4, 1, 1e4} {
		p := nn.NewVectorParam("w", 1)
		adam := NewAdam(nn.Params{p}, 0.001)
		p.Grad[0] = g
		adam.Step()
		if math.Abs(math.Abs(p.Value[0])-0.001) > 1e-6 {
			t.Fatalf("first Adam step with grad %v moved %v, want ≈lr", g, p.Value[0])
		}
	}
}

func TestAdamClipNorm(t *testing.T) {
	p := nn.NewVectorParam("w", 4)
	adam := NewAdam(nn.Params{p}, 0.001)
	adam.ClipNorm = 1
	p.Grad.Fill(100)
	adam.Step()
	if adam.LastGradNorm != 200 { // sqrt(4*100²)=200
		t.Fatalf("LastGradNorm: got %v, want 200", adam.LastGradNorm)
	}
}

func TestAdamDeterministic(t *testing.T) {
	run := func() tensor.Vector {
		params, _, backward := quadratic(3, -1)
		adam := NewAdam(params, 0.01)
		for i := 0; i < 50; i++ {
			backward()
			adam.Step()
		}
		return params.Flatten()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Adam must be deterministic")
		}
	}
}

func TestSetLR(t *testing.T) {
	p := nn.NewVectorParam("w", 1)
	adam := NewAdam(nn.Params{p}, 0.001)
	adam.SetLR(0)
	p.Grad[0] = 1
	adam.Step()
	if p.Value[0] != 0 {
		t.Fatalf("lr=0 must not move parameters")
	}

	sgd := NewSGD(nn.Params{p}, 1, 0, 0)
	sgd.SetLR(0)
	p.Grad[0] = 1
	sgd.Step()
	if p.Value[0] != 0 {
		t.Fatalf("lr=0 must not move parameters (SGD)")
	}
}
