// Package opt provides the optimizers used for model training: Adam (the
// paper trains its RNN with Adam at learning rate 1e-3, §7) and plain SGD
// with optional momentum (used by the logistic-regression baseline).
package opt

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	// Step applies one update from the gradients currently stored in the
	// parameters it was constructed with, then the caller normally zeroes
	// the gradients.
	Step()
}

// Adam implements Adam (Kingma & Ba, 2015) with bias correction, matching
// PyTorch's defaults when constructed via NewAdam.
type Adam struct {
	params       nn.Params
	lr           float64
	beta1        float64
	beta2        float64
	eps          float64
	t            int
	m, v         []tensor.Vector
	ClipNorm     float64 // if > 0, clip the global grad norm before stepping
	LastGradNorm float64 // pre-clip global gradient norm of the last Step
}

// NewAdam returns an Adam optimizer over params with the given learning
// rate and PyTorch-default β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(params nn.Params, lr float64) *Adam {
	a := &Adam{
		params: params, lr: lr,
		beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: make([]tensor.Vector, len(params)),
		v: make([]tensor.Vector, len(params)),
	}
	for i, p := range params {
		a.m[i] = tensor.NewVector(p.Len())
		a.v[i] = tensor.NewVector(p.Len())
	}
	return a
}

// SetLR changes the learning rate for subsequent steps.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// Step applies one Adam update.
func (a *Adam) Step() {
	a.LastGradNorm = a.params.ClipGradNorm(a.ClipNorm)
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Value[j] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
	}
}

// SGD implements stochastic gradient descent with optional momentum and L2
// weight decay.
type SGD struct {
	params      nn.Params
	lr          float64
	momentum    float64
	weightDecay float64
	vel         []tensor.Vector
}

// NewSGD returns an SGD optimizer. momentum and weightDecay may be zero.
func NewSGD(params nn.Params, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, weightDecay: weightDecay}
	if momentum > 0 {
		s.vel = make([]tensor.Vector, len(params))
		for i, p := range params {
			s.vel[i] = tensor.NewVector(p.Len())
		}
	}
	return s
}

// SetLR changes the learning rate for subsequent steps.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.params {
		for j, g := range p.Grad {
			if s.weightDecay > 0 {
				g += s.weightDecay * p.Value[j]
			}
			if s.vel != nil {
				s.vel[i][j] = s.momentum*s.vel[i][j] + g
				g = s.vel[i][j]
			}
			p.Value[j] -= s.lr * g
		}
	}
}
