package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	d := sampleDataset(5, 12, 77)
	d.Schema.HasPeakWindows = true
	d.Schema.PeakStartHour, d.Schema.PeakEndHour = 17, 21
	d.Users[0].Windows = []PeakWindow{{Day: 1, Start: d.Start + Day, End: d.Start + Day + 3600, Accessed: true}}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Schema.Name != d.Schema.Name || got.NumSessions() != d.NumSessions() {
		t.Fatalf("round trip mismatch")
	}
	if got.PositiveRate() != d.PositiveRate() {
		t.Fatalf("positive rate changed")
	}
	if len(got.Users[0].Windows) != 1 || !got.Users[0].Windows[0].Accessed {
		t.Fatalf("windows lost")
	}
	for i, u := range got.Users {
		want := d.Users[i]
		for j, s := range u.Sessions {
			ws := want.Sessions[j]
			if s.Timestamp != ws.Timestamp || s.Access != ws.Access || s.Cat[0] != ws.Cat[0] {
				t.Fatalf("session %d/%d mismatch", i, j)
			}
		}
	}
}

func TestJSONLRejectsBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatalf("empty input must fail")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatalf("non-JSON must fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"other"}` + "\n")); err == nil {
		t.Fatalf("wrong header kind must fail")
	}
	// Header OK but bad user line.
	in := `{"kind":"ppds-header","schema":"x","session_length":600,"cat":[],"start":0,"end":86400}` + "\n" + `{"kind":"wrong"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatalf("wrong user kind must fail")
	}
}

func TestJSONLValidates(t *testing.T) {
	// Out-of-window session must be rejected by the embedded validation.
	in := `{"kind":"ppds-header","schema":"x","session_length":600,"cat":[],"start":0,"end":86400}` + "\n" +
		`{"kind":"user","id":1,"sessions":[{"ts":999999999,"access":false,"cat":[]}]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatalf("invalid dataset must fail validation")
	}
}
