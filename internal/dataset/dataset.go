// Package dataset defines the access-log data model of the paper (§3, §4):
// per-user sequences of sessions, each carrying a start timestamp, a
// context, and a Boolean access flag. It also provides the user-based
// train/test splits, the k-fold cross-validation used for small datasets,
// and the peak-window labelling used by the timeshifted-precompute problem
// (§3.2.1).
package dataset

import (
	"fmt"
	"sort"
)

// Day is one day in seconds; the observation window of every dataset in the
// paper is 30 days.
const Day int64 = 24 * 3600

// ObservationDays is the length of the logging window in days.
const ObservationDays = 30

// CatFeature describes one categorical context variable.
type CatFeature struct {
	Name string
	// Cardinality is the number of distinct values after any hashing; the
	// paper hashes high-cardinality identifiers modulo 97 (§5.2).
	Cardinality int
}

// Schema describes the context layout of a dataset. All sessions in a
// dataset share one schema.
type Schema struct {
	Name string
	// SessionLength is the fixed session window in seconds (20 minutes for
	// MobileTab/Timeshift, 10 minutes for MPU).
	SessionLength int64
	Cat           []CatFeature
	// HasPeakWindows marks timeshift-style datasets whose training
	// examples are (user × peak window) pairs instead of sessions.
	HasPeakWindows bool
	// PeakStartHour/PeakEndHour bound the daily peak window (UTC hours)
	// for timeshift datasets.
	PeakStartHour, PeakEndHour int
}

// CatDim returns the total one-hot width of all categorical features.
func (s *Schema) CatDim() int {
	n := 0
	for _, c := range s.Cat {
		n += c.Cardinality
	}
	return n
}

// Validate checks internal consistency.
func (s *Schema) Validate() error {
	if s.SessionLength <= 0 {
		return fmt.Errorf("dataset: schema %q: non-positive session length", s.Name)
	}
	for _, c := range s.Cat {
		if c.Cardinality <= 0 {
			return fmt.Errorf("dataset: schema %q: feature %q has cardinality %d", s.Name, c.Name, c.Cardinality)
		}
	}
	if s.HasPeakWindows && !(0 <= s.PeakStartHour && s.PeakStartHour < s.PeakEndHour && s.PeakEndHour <= 24) {
		return fmt.Errorf("dataset: schema %q: bad peak window [%d, %d)", s.Name, s.PeakStartHour, s.PeakEndHour)
	}
	return nil
}

// Session is one application session: the context recorded at session start
// plus the access flag determined when the fixed-length window closes.
type Session struct {
	// Timestamp is the session start in Unix seconds.
	Timestamp int64
	// Access reports whether the activity was accessed within the session
	// window (the ground-truth label A_i).
	Access bool
	// Cat holds the categorical context values, one per Schema.Cat entry,
	// each in [0, Cardinality).
	Cat []int
}

// PeakWindow is one timeshift training example: did the user access the
// activity during the peak-hours window of day Day?
type PeakWindow struct {
	// Day indexes the observation day, 0-based.
	Day int
	// Start and End are the window bounds in Unix seconds.
	Start, End int64
	// Accessed is the ground-truth label PA_d.
	Accessed bool
}

// User is one user's complete access log, sorted by timestamp.
type User struct {
	ID       int
	Sessions []Session
	// Windows holds the per-day peak-window examples for timeshift
	// datasets; nil otherwise.
	Windows []PeakWindow
}

// AccessCount returns the number of sessions with a recorded access.
func (u *User) AccessCount() int {
	n := 0
	for _, s := range u.Sessions {
		if s.Access {
			n++
		}
	}
	return n
}

// AccessRate returns the fraction of sessions with an access (0 if the user
// has no sessions).
func (u *User) AccessRate() float64 {
	if len(u.Sessions) == 0 {
		return 0
	}
	return float64(u.AccessCount()) / float64(len(u.Sessions))
}

// SortSessions sorts the user's sessions by timestamp (stable for ties).
func (u *User) SortSessions() {
	sort.SliceStable(u.Sessions, func(i, j int) bool {
		return u.Sessions[i].Timestamp < u.Sessions[j].Timestamp
	})
}

// Dataset is a complete access-log corpus: a schema, the observation window
// and the users.
type Dataset struct {
	Schema *Schema
	// Start and End bound the observation window in Unix seconds; labels
	// and sessions all fall inside [Start, End).
	Start, End int64
	Users      []*User
}

// NumSessions returns the total session count across users.
func (d *Dataset) NumSessions() int {
	n := 0
	for _, u := range d.Users {
		n += len(u.Sessions)
	}
	return n
}

// NumExamples returns the number of labelled training examples: sessions
// for session datasets, peak windows for timeshift datasets (§4.4).
func (d *Dataset) NumExamples() int {
	if d.Schema.HasPeakWindows {
		n := 0
		for _, u := range d.Users {
			n += len(u.Windows)
		}
		return n
	}
	return d.NumSessions()
}

// PositiveRate returns the fraction of positive labels over all examples.
func (d *Dataset) PositiveRate() float64 {
	pos, total := 0, 0
	if d.Schema.HasPeakWindows {
		for _, u := range d.Users {
			for _, w := range u.Windows {
				total++
				if w.Accessed {
					pos++
				}
			}
		}
	} else {
		for _, u := range d.Users {
			for _, s := range u.Sessions {
				total++
				if s.Access {
					pos++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pos) / float64(total)
}

// AccessRates returns the per-user access rate for every user, in user
// order. For timeshift datasets the rate is over peak windows (the unit of
// labelling), matching Figure 1.
func (d *Dataset) AccessRates() []float64 {
	rates := make([]float64, len(d.Users))
	for i, u := range d.Users {
		if d.Schema.HasPeakWindows {
			if len(u.Windows) == 0 {
				continue
			}
			n := 0
			for _, w := range u.Windows {
				if w.Accessed {
					n++
				}
			}
			rates[i] = float64(n) / float64(len(u.Windows))
		} else {
			rates[i] = u.AccessRate()
		}
	}
	return rates
}

// Validate checks dataset invariants: schema validity, sorted sessions,
// in-window timestamps and in-range categorical values.
func (d *Dataset) Validate() error {
	if err := d.Schema.Validate(); err != nil {
		return err
	}
	if d.End <= d.Start {
		return fmt.Errorf("dataset %q: empty observation window", d.Schema.Name)
	}
	for _, u := range d.Users {
		var prev int64 = -1 << 62
		for i, s := range u.Sessions {
			if s.Timestamp < prev {
				return fmt.Errorf("dataset %q: user %d: sessions out of order at %d", d.Schema.Name, u.ID, i)
			}
			prev = s.Timestamp
			if s.Timestamp < d.Start || s.Timestamp >= d.End {
				return fmt.Errorf("dataset %q: user %d: session %d outside window", d.Schema.Name, u.ID, i)
			}
			if len(s.Cat) != len(d.Schema.Cat) {
				return fmt.Errorf("dataset %q: user %d: session %d has %d categorical values, schema has %d",
					d.Schema.Name, u.ID, i, len(s.Cat), len(d.Schema.Cat))
			}
			for j, v := range s.Cat {
				if v < 0 || v >= d.Schema.Cat[j].Cardinality {
					return fmt.Errorf("dataset %q: user %d: session %d: feature %q value %d out of range",
						d.Schema.Name, u.ID, i, d.Schema.Cat[j].Name, v)
				}
			}
		}
		if d.Schema.HasPeakWindows {
			for i, w := range u.Windows {
				if w.End <= w.Start {
					return fmt.Errorf("dataset %q: user %d: window %d is empty", d.Schema.Name, u.ID, i)
				}
			}
		}
	}
	return nil
}

// DayOf returns the 0-based observation day containing ts.
func (d *Dataset) DayOf(ts int64) int { return int((ts - d.Start) / Day) }

// CutoffForLastDays returns the timestamp such that [cutoff, End) spans the
// final `days` days of the observation window. Training losses use the last
// 21 days (§6.3) and evaluation uses the last 7 (§8).
func (d *Dataset) CutoffForLastDays(days int) int64 {
	return d.End - int64(days)*Day
}
