package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL interchange: one JSON object per line, a header line followed by
// user lines. The binary codec (codec.go) is the compact native format;
// JSONL exists so external tooling (pandas, jq) can consume generated
// datasets and real access logs can be imported.

type jsonlHeader struct {
	Kind           string       `json:"kind"` // "ppds-header"
	SchemaName     string       `json:"schema"`
	SessionLength  int64        `json:"session_length"`
	Cat            []CatFeature `json:"cat"`
	HasPeakWindows bool         `json:"has_peak_windows,omitempty"`
	PeakStartHour  int          `json:"peak_start_hour,omitempty"`
	PeakEndHour    int          `json:"peak_end_hour,omitempty"`
	Start          int64        `json:"start"`
	End            int64        `json:"end"`
}

type jsonlSession struct {
	Ts     int64 `json:"ts"`
	Access bool  `json:"access"`
	Cat    []int `json:"cat"`
}

type jsonlWindow struct {
	Day      int   `json:"day"`
	Start    int64 `json:"start"`
	End      int64 `json:"end"`
	Accessed bool  `json:"accessed"`
}

type jsonlUser struct {
	Kind     string         `json:"kind"` // "user"
	ID       int            `json:"id"`
	Sessions []jsonlSession `json:"sessions"`
	Windows  []jsonlWindow  `json:"windows,omitempty"`
}

// WriteJSONL serialises d as JSON lines.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := jsonlHeader{
		Kind: "ppds-header", SchemaName: d.Schema.Name,
		SessionLength: d.Schema.SessionLength, Cat: d.Schema.Cat,
		HasPeakWindows: d.Schema.HasPeakWindows,
		PeakStartHour:  d.Schema.PeakStartHour, PeakEndHour: d.Schema.PeakEndHour,
		Start: d.Start, End: d.End,
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, u := range d.Users {
		ju := jsonlUser{Kind: "user", ID: u.ID}
		for _, s := range u.Sessions {
			ju.Sessions = append(ju.Sessions, jsonlSession{Ts: s.Timestamp, Access: s.Access, Cat: s.Cat})
		}
		for _, pw := range u.Windows {
			ju.Windows = append(ju.Windows, jsonlWindow{Day: pw.Day, Start: pw.Start, End: pw.End, Accessed: pw.Accessed})
		}
		if err := enc.Encode(ju); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL deserialises a dataset written by WriteJSONL (or produced by
// external tooling in the same shape). The result is validated.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dataset: empty JSONL input")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("dataset: parsing header: %w", err)
	}
	if hdr.Kind != "ppds-header" {
		return nil, fmt.Errorf("dataset: first line is not a ppds-header")
	}
	d := &Dataset{
		Schema: &Schema{
			Name: hdr.SchemaName, SessionLength: hdr.SessionLength, Cat: hdr.Cat,
			HasPeakWindows: hdr.HasPeakWindows,
			PeakStartHour:  hdr.PeakStartHour, PeakEndHour: hdr.PeakEndHour,
		},
		Start: hdr.Start, End: hdr.End,
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ju jsonlUser
		if err := json.Unmarshal(sc.Bytes(), &ju); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if ju.Kind != "user" {
			return nil, fmt.Errorf("dataset: line %d: unexpected kind %q", line, ju.Kind)
		}
		u := &User{ID: ju.ID}
		for _, s := range ju.Sessions {
			cat := s.Cat
			if cat == nil {
				cat = []int{}
			}
			u.Sessions = append(u.Sessions, Session{Timestamp: s.Ts, Access: s.Access, Cat: cat})
		}
		for _, w := range ju.Windows {
			u.Windows = append(u.Windows, PeakWindow{Day: w.Day, Start: w.Start, End: w.End, Accessed: w.Accessed})
		}
		d.Users = append(d.Users, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, d.Validate()
}
