package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary codec serialises datasets compactly for cmd/ppgen output and
// cmd/ppbench input. Format (little-endian):
//
//	magic "PPDS" | version u32 | schema block | start i64 | end i64 |
//	numUsers u32 | per-user blocks
//
// Strings are u32-length-prefixed UTF-8.

const (
	codecMagic   = "PPDS"
	codecVersion = 1
)

// Write serialises d to w.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	writeU32(bw, codecVersion)
	writeString(bw, d.Schema.Name)
	writeI64(bw, d.Schema.SessionLength)
	writeU32(bw, uint32(len(d.Schema.Cat)))
	for _, c := range d.Schema.Cat {
		writeString(bw, c.Name)
		writeU32(bw, uint32(c.Cardinality))
	}
	writeBool(bw, d.Schema.HasPeakWindows)
	writeU32(bw, uint32(d.Schema.PeakStartHour))
	writeU32(bw, uint32(d.Schema.PeakEndHour))
	writeI64(bw, d.Start)
	writeI64(bw, d.End)
	writeU32(bw, uint32(len(d.Users)))
	for _, u := range d.Users {
		writeU32(bw, uint32(u.ID))
		writeU32(bw, uint32(len(u.Sessions)))
		for _, s := range u.Sessions {
			writeI64(bw, s.Timestamp)
			writeBool(bw, s.Access)
			for _, v := range s.Cat {
				writeU32(bw, uint32(v))
			}
		}
		writeU32(bw, uint32(len(u.Windows)))
		for _, pw := range u.Windows {
			writeU32(bw, uint32(pw.Day))
			writeI64(bw, pw.Start)
			writeI64(bw, pw.End)
			writeBool(bw, pw.Accessed)
		}
	}
	return bw.Flush()
}

// Read deserialises a dataset previously produced by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	schema := &Schema{}
	if schema.Name, err = readString(br); err != nil {
		return nil, err
	}
	if schema.SessionLength, err = readI64(br); err != nil {
		return nil, err
	}
	nCat, err := readU32(br)
	if err != nil {
		return nil, err
	}
	schema.Cat = make([]CatFeature, nCat)
	for i := range schema.Cat {
		if schema.Cat[i].Name, err = readString(br); err != nil {
			return nil, err
		}
		card, err := readU32(br)
		if err != nil {
			return nil, err
		}
		schema.Cat[i].Cardinality = int(card)
	}
	if schema.HasPeakWindows, err = readBool(br); err != nil {
		return nil, err
	}
	psh, err := readU32(br)
	if err != nil {
		return nil, err
	}
	peh, err := readU32(br)
	if err != nil {
		return nil, err
	}
	schema.PeakStartHour, schema.PeakEndHour = int(psh), int(peh)

	d := &Dataset{Schema: schema}
	if d.Start, err = readI64(br); err != nil {
		return nil, err
	}
	if d.End, err = readI64(br); err != nil {
		return nil, err
	}
	nUsers, err := readU32(br)
	if err != nil {
		return nil, err
	}
	d.Users = make([]*User, nUsers)
	for ui := range d.Users {
		id, err := readU32(br)
		if err != nil {
			return nil, err
		}
		nSess, err := readU32(br)
		if err != nil {
			return nil, err
		}
		u := &User{ID: int(id), Sessions: make([]Session, nSess)}
		for si := range u.Sessions {
			s := &u.Sessions[si]
			if s.Timestamp, err = readI64(br); err != nil {
				return nil, err
			}
			if s.Access, err = readBool(br); err != nil {
				return nil, err
			}
			s.Cat = make([]int, nCat)
			for ci := range s.Cat {
				v, err := readU32(br)
				if err != nil {
					return nil, err
				}
				s.Cat[ci] = int(v)
			}
		}
		nWin, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if nWin > 0 {
			u.Windows = make([]PeakWindow, nWin)
			for wi := range u.Windows {
				w := &u.Windows[wi]
				day, err := readU32(br)
				if err != nil {
					return nil, err
				}
				w.Day = int(day)
				if w.Start, err = readI64(br); err != nil {
					return nil, err
				}
				if w.End, err = readI64(br); err != nil {
					return nil, err
				}
				if w.Accessed, err = readBool(br); err != nil {
					return nil, err
				}
			}
		}
		d.Users[ui] = u
	}
	return d, d.Validate()
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:]) //nolint:errcheck // flushed at end; bufio sticky error
}

func writeI64(w *bufio.Writer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.Write(buf[:]) //nolint:errcheck
}

func writeBool(w *bufio.Writer, v bool) {
	if v {
		w.WriteByte(1) //nolint:errcheck
	} else {
		w.WriteByte(0) //nolint:errcheck
	}
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s) //nolint:errcheck
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readI64(r *bufio.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func readBool(r *bufio.Reader) (bool, error) {
	b, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
