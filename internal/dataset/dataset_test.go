package dataset

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sampleSchema() *Schema {
	return &Schema{
		Name:          "test",
		SessionLength: 1200,
		Cat: []CatFeature{
			{Name: "unread", Cardinality: 100},
			{Name: "tab", Cardinality: 97},
		},
	}
}

func sampleDataset(numUsers, sessionsPerUser int, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	schema := sampleSchema()
	start := int64(1_600_000_000)
	end := start + ObservationDays*Day
	d := &Dataset{Schema: schema, Start: start, End: end}
	for i := 0; i < numUsers; i++ {
		u := &User{ID: i}
		ts := start
		for j := 0; j < sessionsPerUser; j++ {
			ts += int64(rng.Intn(int(Day / 2)))
			if ts >= end {
				break
			}
			u.Sessions = append(u.Sessions, Session{
				Timestamp: ts,
				Access:    rng.Bernoulli(0.3),
				Cat:       []int{rng.Intn(100), rng.Intn(97)},
			})
		}
		d.Users = append(d.Users, u)
	}
	return d
}

func TestSchemaValidate(t *testing.T) {
	s := sampleSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if s.CatDim() != 197 {
		t.Fatalf("CatDim: got %d, want 197", s.CatDim())
	}

	bad := *s
	bad.SessionLength = 0
	if bad.Validate() == nil {
		t.Fatalf("zero session length must fail")
	}

	bad = *s
	bad.Cat = []CatFeature{{Name: "x", Cardinality: 0}}
	if bad.Validate() == nil {
		t.Fatalf("zero cardinality must fail")
	}

	bad = *s
	bad.HasPeakWindows = true
	bad.PeakStartHour, bad.PeakEndHour = 20, 10
	if bad.Validate() == nil {
		t.Fatalf("inverted peak window must fail")
	}
}

func TestUserAccessStats(t *testing.T) {
	u := &User{Sessions: []Session{
		{Timestamp: 1, Access: true},
		{Timestamp: 2, Access: false},
		{Timestamp: 3, Access: true},
		{Timestamp: 4, Access: false},
	}}
	if u.AccessCount() != 2 {
		t.Fatalf("AccessCount: got %d", u.AccessCount())
	}
	if u.AccessRate() != 0.5 {
		t.Fatalf("AccessRate: got %v", u.AccessRate())
	}
	empty := &User{}
	if empty.AccessRate() != 0 {
		t.Fatalf("empty user AccessRate must be 0")
	}
}

func TestSortSessions(t *testing.T) {
	u := &User{Sessions: []Session{
		{Timestamp: 30}, {Timestamp: 10}, {Timestamp: 20},
	}}
	u.SortSessions()
	for i := 1; i < len(u.Sessions); i++ {
		if u.Sessions[i].Timestamp < u.Sessions[i-1].Timestamp {
			t.Fatalf("SortSessions failed: %v", u.Sessions)
		}
	}
}

func TestDatasetCounters(t *testing.T) {
	d := sampleDataset(10, 20, 1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	n := 0
	for _, u := range d.Users {
		n += len(u.Sessions)
	}
	if d.NumSessions() != n || d.NumExamples() != n {
		t.Fatalf("session counts inconsistent")
	}
	pr := d.PositiveRate()
	if pr < 0.15 || pr > 0.45 {
		t.Fatalf("positive rate implausible for p=0.3: %v", pr)
	}
	rates := d.AccessRates()
	if len(rates) != len(d.Users) {
		t.Fatalf("AccessRates length mismatch")
	}
}

func TestPeakWindowExampleCounting(t *testing.T) {
	schema := &Schema{Name: "ts", SessionLength: 1200, HasPeakWindows: true, PeakStartHour: 17, PeakEndHour: 21}
	d := &Dataset{Schema: schema, Start: 0, End: 30 * Day}
	u := &User{ID: 0}
	for day := 0; day < 30; day++ {
		u.Windows = append(u.Windows, PeakWindow{
			Day:      day,
			Start:    int64(day)*Day + 17*3600,
			End:      int64(day)*Day + 21*3600,
			Accessed: day%3 == 0,
		})
	}
	d.Users = []*User{u}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumExamples() != 30 {
		t.Fatalf("NumExamples: got %d, want 30", d.NumExamples())
	}
	if got := d.PositiveRate(); got != 10.0/30 {
		t.Fatalf("PositiveRate: got %v", got)
	}
	if got := d.AccessRates()[0]; got != 10.0/30 {
		t.Fatalf("AccessRates: got %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := sampleDataset(3, 10, 2)

	d.Users[0].Sessions[0].Cat[0] = 1000
	if d.Validate() == nil {
		t.Fatalf("out-of-range categorical must fail")
	}
	d.Users[0].Sessions[0].Cat[0] = 0

	d.Users[1].Sessions[0].Timestamp = d.End + 1
	if d.Validate() == nil {
		t.Fatalf("out-of-window timestamp must fail")
	}
}

func TestDayOfAndCutoff(t *testing.T) {
	d := sampleDataset(1, 5, 3)
	if d.DayOf(d.Start) != 0 {
		t.Fatalf("DayOf(start) != 0")
	}
	if d.DayOf(d.Start+Day+5) != 1 {
		t.Fatalf("DayOf day 1 failed")
	}
	cutoff := d.CutoffForLastDays(7)
	if d.End-cutoff != 7*Day {
		t.Fatalf("CutoffForLastDays: got %d", d.End-cutoff)
	}
}

func TestSplitUsersPartition(t *testing.T) {
	d := sampleDataset(100, 5, 4)
	sp := SplitUsers(d, 0.1, 42)
	if len(sp.Test.Users) != 10 || len(sp.Train.Users) != 90 {
		t.Fatalf("split sizes: %d/%d", len(sp.Train.Users), len(sp.Test.Users))
	}
	seen := map[int]int{}
	for _, u := range sp.Train.Users {
		seen[u.ID]++
	}
	for _, u := range sp.Test.Users {
		seen[u.ID]++
	}
	if len(seen) != 100 {
		t.Fatalf("split lost users: %d", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("user %d appears %d times", id, n)
		}
	}
}

func TestSplitUsersDeterministic(t *testing.T) {
	d := sampleDataset(50, 5, 5)
	a := SplitUsers(d, 0.2, 7)
	b := SplitUsers(d, 0.2, 7)
	for i := range a.Test.Users {
		if a.Test.Users[i].ID != b.Test.Users[i].ID {
			t.Fatalf("split must be deterministic for one seed")
		}
	}
	c := SplitUsers(d, 0.2, 8)
	diff := false
	for i := range a.Test.Users {
		if a.Test.Users[i].ID != c.Test.Users[i].ID {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("different seeds should give different splits")
	}
}

func TestKFoldPartition(t *testing.T) {
	d := sampleDataset(101, 3, 6)
	folds := KFold(d, 4, 9)
	if len(folds) != 4 {
		t.Fatalf("fold count: %d", len(folds))
	}
	testCount := map[int]int{}
	for _, f := range folds {
		if len(f.Train.Users)+len(f.Test.Users) != 101 {
			t.Fatalf("fold does not cover all users")
		}
		inTrain := map[int]bool{}
		for _, u := range f.Train.Users {
			inTrain[u.ID] = true
		}
		for _, u := range f.Test.Users {
			if inTrain[u.ID] {
				t.Fatalf("user %d in both train and test of one fold", u.ID)
			}
			testCount[u.ID]++
		}
	}
	if len(testCount) != 101 {
		t.Fatalf("every user must appear in exactly one test fold; got %d", len(testCount))
	}
	for id, n := range testCount {
		if n != 1 {
			t.Fatalf("user %d in %d test folds", id, n)
		}
	}
}

func TestKFoldPanics(t *testing.T) {
	d := sampleDataset(3, 2, 10)
	for _, k := range []int{1, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("KFold(k=%d) must panic", k)
				}
			}()
			KFold(d, k, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("KFold with too few users must panic")
			}
		}()
		KFold(d, 4, 1)
	}()
}

func TestTruncateHistories(t *testing.T) {
	d := sampleDataset(5, 40, 11)
	trimmed := TruncateHistories(d, 10)
	for i, u := range trimmed.Users {
		if len(u.Sessions) > 10 {
			t.Fatalf("user %d still has %d sessions", i, len(u.Sessions))
		}
		orig := d.Users[i].Sessions
		if len(orig) > 10 {
			// Must keep the most recent sessions.
			if u.Sessions[0].Timestamp != orig[len(orig)-10].Timestamp {
				t.Fatalf("truncation must keep the suffix")
			}
		}
	}
	// Original untouched.
	for _, u := range d.Users {
		if len(u.Sessions) <= 10 {
			t.Fatalf("original dataset was mutated (or generator made too few sessions)")
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := sampleDataset(7, 15, 12)
	// Add peak windows to one user to exercise that path.
	d.Schema.HasPeakWindows = true
	d.Schema.PeakStartHour, d.Schema.PeakEndHour = 17, 21
	d.Users[0].Windows = []PeakWindow{{Day: 0, Start: d.Start, End: d.Start + 4*3600, Accessed: true}}

	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Schema.Name != d.Schema.Name || got.Schema.SessionLength != d.Schema.SessionLength {
		t.Fatalf("schema mismatch after round trip")
	}
	if got.Start != d.Start || got.End != d.End {
		t.Fatalf("window mismatch")
	}
	if len(got.Users) != len(d.Users) {
		t.Fatalf("user count mismatch")
	}
	for i, u := range got.Users {
		want := d.Users[i]
		if u.ID != want.ID || len(u.Sessions) != len(want.Sessions) {
			t.Fatalf("user %d mismatch", i)
		}
		for j, s := range u.Sessions {
			ws := want.Sessions[j]
			if s.Timestamp != ws.Timestamp || s.Access != ws.Access {
				t.Fatalf("session %d/%d mismatch", i, j)
			}
			for k := range s.Cat {
				if s.Cat[k] != ws.Cat[k] {
					t.Fatalf("cat %d/%d/%d mismatch", i, j, k)
				}
			}
		}
		if len(u.Windows) != len(want.Windows) {
			t.Fatalf("windows mismatch for user %d", i)
		}
	}
	if got.Users[0].Windows[0].Accessed != true {
		t.Fatalf("peak window label lost")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Fatalf("garbage must be rejected")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty input must be rejected")
	}
}

// Property: round-tripping any generated dataset through the codec
// preserves session counts and the positive rate exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := sampleDataset(1+int(seed%8), 1+int(seed%25), seed)
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.NumSessions() == d.NumSessions() && got.PositiveRate() == d.PositiveRate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
