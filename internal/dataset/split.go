package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// Split is a user-based train/test partition. The paper splits by user
// (90%/10%) rather than by time so that the full 30-day history of each
// training user is available at training time (§8).
type Split struct {
	Train, Test *Dataset
}

// SplitUsers partitions d's users into train and test datasets with the
// given test fraction, shuffled deterministically by seed. User records are
// shared (not copied); the returned datasets are views.
func SplitUsers(d *Dataset, testFrac float64, seed uint64) Split {
	if testFrac < 0 || testFrac > 1 {
		panic(fmt.Sprintf("dataset: SplitUsers: testFrac %v out of [0,1]", testFrac))
	}
	perm := tensor.NewRNG(seed).Perm(len(d.Users))
	nTest := int(float64(len(d.Users)) * testFrac)
	test := make([]*User, 0, nTest)
	train := make([]*User, 0, len(d.Users)-nTest)
	for i, idx := range perm {
		if i < nTest {
			test = append(test, d.Users[idx])
		} else {
			train = append(train, d.Users[idx])
		}
	}
	return Split{
		Train: &Dataset{Schema: d.Schema, Start: d.Start, End: d.End, Users: train},
		Test:  &Dataset{Schema: d.Schema, Start: d.Start, End: d.End, Users: test},
	}
}

// Fold is one cross-validation fold.
type Fold struct {
	Train, Test *Dataset
}

// KFold returns a k-fold user-based cross-validation partition, shuffled
// deterministically by seed. The paper uses k = 4 for the small MPU dataset
// (§7) and evaluates over the combined out-of-fold predictions.
func KFold(d *Dataset, k int, seed uint64) []Fold {
	if k < 2 {
		panic(fmt.Sprintf("dataset: KFold: k must be >= 2, got %d", k))
	}
	if len(d.Users) < k {
		panic(fmt.Sprintf("dataset: KFold: %d users < %d folds", len(d.Users), k))
	}
	perm := tensor.NewRNG(seed).Perm(len(d.Users))
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		var train, test []*User
		for i, idx := range perm {
			if i%k == f {
				test = append(test, d.Users[idx])
			} else {
				train = append(train, d.Users[idx])
			}
		}
		folds[f] = Fold{
			Train: &Dataset{Schema: d.Schema, Start: d.Start, End: d.End, Users: train},
			Test:  &Dataset{Schema: d.Schema, Start: d.Start, End: d.End, Users: test},
		}
	}
	return folds
}

// TruncateHistories caps every user's session history at the most recent
// maxSessions sessions, returning a view dataset. The paper truncates MPU
// histories to the latest 10,000 sessions to bound training time (§7.1).
func TruncateHistories(d *Dataset, maxSessions int) *Dataset {
	users := make([]*User, len(d.Users))
	for i, u := range d.Users {
		if len(u.Sessions) <= maxSessions {
			users[i] = u
			continue
		}
		trimmed := *u
		trimmed.Sessions = u.Sessions[len(u.Sessions)-maxSessions:]
		users[i] = &trimmed
	}
	return &Dataset{Schema: d.Schema, Start: d.Start, End: d.End, Users: users}
}
