package repro

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/synth"
)

// TestOfflineOnlineConsistency is the end-to-end invariant of the system:
// replaying a user's traffic through the *production* path (prediction
// service + stream processor + KV store with float32 hidden states) must
// produce the same probabilities as the offline evaluator used for all the
// paper's tables, up to the float32 storage rounding.
func TestOfflineOnlineConsistency(t *testing.T) {
	cfg := synth.DefaultMobileTab()
	cfg.Users = 40
	data := synth.GenerateMobileTab(cfg)

	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 16
	mcfg.MLPHidden = 16
	model := core.New(data.Schema, mcfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 1
	tc.BatchUsers = 4
	core.NewTrainer(model, tc).Train(data)

	// Offline path.
	offScores, offLabels := model.EvaluateSessions(data, 0)

	// Online path: global timestamp-ordered replay through the serving
	// tier. The stream processor's timers implement the same δ visibility
	// the offline evaluator's lag indexing does.
	store := serving.NewKVStore()
	proc := serving.NewStreamProcessor(model, store)
	svc := serving.NewPredictionService(model, store, 0.5)

	type ev struct {
		ts     int64
		user   int
		seq    int
		sid    string
		cat    []int
		access bool
	}
	var evs []ev
	for _, u := range data.Users {
		for i, s := range u.Sessions {
			evs = append(evs, ev{s.Timestamp, u.ID, i, fmt.Sprintf("%d-%d", u.ID, i), s.Cat, s.Access})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	onByUser := map[int][]float64{}
	for _, e := range evs {
		proc.Advance(e.ts)
		dec := svc.OnSessionStart(e.user, e.ts, e.cat)
		onByUser[e.user] = append(onByUser[e.user], dec.Probability)
		proc.OnSessionStart(e.sid, e.user, e.ts, e.cat)
		if e.access {
			proc.OnAccess(e.sid, e.ts+1)
		}
	}
	proc.Flush()

	// Re-interleave the offline scores per user for comparison.
	offByUser := map[int][]float64{}
	idx := 0
	for _, u := range data.Users {
		for range u.Sessions {
			offByUser[u.ID] = append(offByUser[u.ID], offScores[idx])
			idx++
		}
	}
	_ = offLabels

	users, sessions := 0, 0
	var maxDiff float64
	for uid, off := range offByUser {
		on := onByUser[uid]
		if len(on) != len(off) {
			t.Fatalf("user %d: %d online vs %d offline predictions", uid, len(on), len(off))
		}
		users++
		for i := range off {
			sessions++
			d := math.Abs(off[i] - on[i])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	// float32 hidden-state storage rounds each component by ≤ 2^-24·|h|;
	// through the MLP this stays far below 1e-4 in probability.
	if maxDiff > 1e-4 {
		t.Fatalf("offline and serving paths diverge: max |Δp| = %v over %d sessions", maxDiff, sessions)
	}
	t.Logf("checked %d users, %d sessions: max |Δp| = %.2e", users, sessions, maxDiff)
}

// TestFullPipelineThroughBinaryCodec exercises generate → serialize →
// deserialize → train → evaluate as a user of the released library would.
func TestFullPipelineThroughBinaryCodec(t *testing.T) {
	cfg := synth.DefaultMobileTab()
	cfg.Users = 60
	orig := synth.GenerateMobileTab(cfg)

	var buf bytes.Buffer
	if err := dataset.Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, err := dataset.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}

	split := dataset.SplitUsers(data, 0.25, 3)
	mcfg := core.DefaultConfig()
	mcfg.HiddenDim = 12
	mcfg.MLPHidden = 12
	model := core.New(data.Schema, mcfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchUsers = 4
	tc.LR = 2e-3
	core.NewTrainer(model, tc).Train(split.Train)

	scores, labels := model.EvaluateSessions(split.Test, data.CutoffForLastDays(7))
	auc := metrics.PRAUC(scores, labels)
	base := data.PositiveRate()
	if math.IsNaN(auc) || auc <= base {
		t.Fatalf("pipeline model no better than chance: AUC %v, base %v", auc, base)
	}
}
