// Package repro is a from-scratch Go reproduction of "Predictive Precompute
// with Recurrent Neural Networks" (Wang, Wang & Ma, MLSys 2020,
// arXiv:1912.06779).
//
// The paper's system decides, per user and per application session, whether
// to precompute (prefetch) data for an activity by estimating the access
// probability from the user's historical access logs. Its contribution is a
// GRU-based model whose per-user hidden state replaces all time-windowed
// aggregation features, improving accuracy while cutting serving cost by an
// order of magnitude.
//
// Layout:
//
//   - internal/core — the paper's model and training procedure (§6-7)
//   - internal/{tensor,nn,opt} — the neural-network substrate (PyTorch
//     stand-in); a two-tier precision architecture: f64 reference kernels
//     (bit-exact, single-accumulator chains) plus an f32 fast tier
//     (4-lane accumulation contract, SSE micro-kernel on amd64, fused
//     GRU gate epilogues) selected through nn.PrecisionTier
//   - internal/{baselines,gbdt,features} — the traditional models and the
//     feature engineering they need (§5)
//   - internal/{dataset,synth} — the access-log data model and synthetic
//     versions of the paper's three datasets (§4)
//   - internal/serving — KV store, stream processor, cost model, online
//     experiment (§9)
//   - internal/statestore — durable, memory-bounded hidden-state store
//     (WAL + snapshots, idle eviction, byte budget, int8 and tagged-f32
//     storage tiers)
//   - internal/server — request-driven online serving tier: HTTP/JSON
//     API + dynamic micro-batcher over the batched GEMM path (§9)
//   - internal/cluster — user-sharded serving cluster: consistent-hash
//     ring, forwarding/aggregating router with per-route deadlines,
//     retries, per-replica circuit breakers and degraded predicts,
//     drain-and-handoff resharding, health prober + follower promotion
//     on primary death
//   - internal/wire — persistent-connection binary protocol for the hot
//     event/predict path: length-prefixed CRC-framed requests with
//     pipelined reply correlation, self-delimiting event batches, and
//     the zero-copy splicer the router fans batches out with (HTTP/JSON
//     stays for the control plane)
//   - internal/replication — per-replica WAL shipping: a source tails
//     the statestore WAL to a follower over a persistent connection
//     (snapshot bootstrap, epoch fencing, windowed acks); promotion at
//     replication lag zero loses no acknowledged state
//   - internal/faults — deterministic, seeded fault injection: named
//     fault points threaded through the router, replication, statestore
//     and server seams, nil-op by default, armed from a scenario spec
//     (-faults file.json) so chaos runs replay
//   - internal/experiments — one driver per table/figure (§8-9)
//   - internal/analysis — pplint: project-specific static analyzers that
//     enforce the repo's clock, float-order, locking and durability
//     invariants (internal/analysis/escape is the heap-escape gate)
//   - internal/leakcheck — goroutine-leak assertions for test mains
//   - cmd/{ppgen,ppbench,ppserve,ppload,pprouter} — command-line tools
//   - cmd/{pplint,ppescape} — CI gates: the analyzer driver and the
//     escape-analysis regression checker over cmd/ppescape/hotpaths.conf
//   - examples/ — runnable walkthroughs of the public API
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
